"""Epoch analysis of block lifetimes (Section 2.3).

The life of a block in the LLC, from fill to eviction, is divided into
epochs demarcated by the hits the block enjoys: a block enters E0 when
filled (or, for the texture stream, when a render-target block is
consumed by the samplers), and moves from E_k to E_{k+1} on each hit.
The *death ratio* of E_k is the fraction of blocks that entered E_k but
were evicted before reaching E_{k+1}; the complement is the epoch's
reuse probability.  Figures 7 and 9 report these for the texture and Z
streams under Belady's optimal policy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.cache.llc import LLCObserver
from repro.core.base import AccessContext
from repro.streams import StreamClass

#: Epochs 0, 1, 2 are tracked individually; 3 stands for E>=3.
EPOCH_CAP = 3
_UNTRACKED = -1


@dataclasses.dataclass(frozen=True)
class EpochStats:
    """Final epoch statistics for one tracked stream class."""

    #: entered[k]: block-lives that reached epoch k (k = 0..EPOCH_CAP).
    entered: Tuple[int, ...]
    #: hits_from[k]: hits received by blocks while in epoch k
    #: (hits_from[EPOCH_CAP] aggregates all hits at epoch >= EPOCH_CAP).
    hits_from: Tuple[int, ...]
    #: still_alive[k]: lives resident in epoch k when tracking ended.
    still_alive: Tuple[int, ...]
    #: lives ended by the block being re-acquired by another stream
    #: (e.g. a texture block turned back into a render target).
    conversions: int

    def death_ratio(self, epoch: int, exclude_survivors: bool = True) -> float:
        """Death ratio of epoch ``epoch`` (the lower panels of Figs 7/9).

        With ``exclude_survivors`` (default) blocks still resident at the
        end of the trace are removed from the population, since they
        neither died nor advanced.
        """
        if not 0 <= epoch < EPOCH_CAP:
            raise IndexError(f"death ratio defined for epochs 0..{EPOCH_CAP - 1}")
        population = self.entered[epoch]
        if exclude_survivors:
            population -= self.still_alive[epoch]
        if population <= 0:
            return 0.0
        deaths = population - self.entered[epoch + 1]
        return max(0.0, min(1.0, deaths / population))

    def reuse_probability(self, epoch: int) -> float:
        return 1.0 - self.death_ratio(epoch)

    def hit_distribution(self) -> Tuple[float, ...]:
        """Fraction of stream hits received in each epoch (Fig 7 upper)."""
        total = sum(self.hits_from)
        if total == 0:
            return tuple(0.0 for _ in self.hits_from)
        return tuple(h / total for h in self.hits_from)


class EpochTracker(LLCObserver):
    """LLC observer that measures epoch populations for one stream class.

    For ``StreamClass.TEX`` a life additionally begins when a
    render-target block is consumed by the samplers (the engine reports
    the pre-consumption RT bit via ``was_rt``), mirroring the paper's
    definition of a "texture block".
    """

    def __init__(self, sclass: StreamClass, num_slots: int) -> None:
        self.sclass = int(sclass)
        self._epoch_of: List[int] = [_UNTRACKED] * num_slots
        self.entered = [0] * (EPOCH_CAP + 1)
        self.hits_from = [0] * (EPOCH_CAP + 1)
        self.conversions = 0
        self.untracked_hits = 0
        self._is_tex = self.sclass == int(StreamClass.TEX)

    # -- LLCObserver hooks -------------------------------------------------

    def on_fill(self, ctx: AccessContext, slot: int) -> None:
        if ctx.sclass == self.sclass:
            self._epoch_of[slot] = 0
            self.entered[0] += 1
        else:
            self._epoch_of[slot] = _UNTRACKED

    def on_hit(self, ctx: AccessContext, slot: int, was_rt: bool) -> None:
        epoch = self._epoch_of[slot]
        if ctx.sclass == self.sclass:
            if self._is_tex and was_rt:
                # Render-target consumption: a texture life begins at E0.
                self._end_life(slot)
                self._epoch_of[slot] = 0
                self.entered[0] += 1
                return
            if epoch == _UNTRACKED:
                self.untracked_hits += 1
                return
            self.hits_from[min(epoch, EPOCH_CAP)] += 1
            if epoch < EPOCH_CAP:
                self._epoch_of[slot] = epoch + 1
                self.entered[epoch + 1] += 1
            return
        # A different stream touched the block: the tracked life ends.
        if epoch != _UNTRACKED:
            self.conversions += 1
            self._epoch_of[slot] = _UNTRACKED

    def on_evict(self, ctx: AccessContext, slot: int) -> None:
        self._epoch_of[slot] = _UNTRACKED

    # -- finalization --------------------------------------------------------

    def _end_life(self, slot: int) -> None:
        if self._epoch_of[slot] != _UNTRACKED:
            self.conversions += 1
            self._epoch_of[slot] = _UNTRACKED

    def finalize(self) -> EpochStats:
        still_alive = [0] * (EPOCH_CAP + 1)
        for epoch in self._epoch_of:
            if epoch != _UNTRACKED:
                still_alive[epoch] += 1
        return EpochStats(
            entered=tuple(self.entered),
            hits_from=tuple(self.hits_from),
            still_alive=tuple(still_alive),
            conversions=self.conversions,
        )


class MultiEpochTracker(LLCObserver):
    """Fans LLC events out to several epoch trackers in one pass."""

    def __init__(self, trackers: List[EpochTracker]) -> None:
        self.trackers = trackers

    def on_fill(self, ctx: AccessContext, slot: int) -> None:
        for tracker in self.trackers:
            tracker.on_fill(ctx, slot)

    def on_hit(self, ctx: AccessContext, slot: int, was_rt: bool) -> None:
        for tracker in self.trackers:
            tracker.on_hit(ctx, slot, was_rt)

    def on_evict(self, ctx: AccessContext, slot: int) -> None:
        for tracker in self.trackers:
            tracker.on_evict(ctx, slot)
