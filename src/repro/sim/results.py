"""Simulation results and cross-policy comparison helpers."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence

from repro.cache.stats import LLCStats
from repro.errors import SimulationError


@dataclasses.dataclass
class SimResult:
    """Outcome of replaying one trace under one policy."""

    policy: str
    stats: LLCStats
    accesses: int
    #: Wall-clock total (``setup_seconds + replay_seconds``).
    elapsed_seconds: float = 0.0
    #: Pre-replay work: array conversions and (for Belady) the
    #: next-use precompute.  Kept separate so policies that need future
    #: knowledge do not report inflated replay time.
    setup_seconds: float = 0.0
    #: Pure replay-loop time; the basis of accesses/second throughput.
    replay_seconds: float = 0.0
    trace_meta: Mapping[str, object] = dataclasses.field(default_factory=dict)
    #: Policy-specific extras (e.g. DRRIP fill-RRPV fractions, epoch data).
    extras: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    @property
    def workload_name(self) -> str:
        return str(self.trace_meta.get("name", "unknown"))

    @property
    def replay_accesses_per_second(self) -> float:
        """Replay-loop throughput (setup excluded)."""
        if self.replay_seconds <= 0:
            return 0.0
        return self.accesses / self.replay_seconds

    def misses_normalized_to(self, baseline: "SimResult") -> float:
        """This policy's miss count relative to a baseline run.

        Values below 1.0 mean fewer misses than the baseline, matching
        the normalization of Figures 1, 12 and 14.
        """
        if baseline.accesses != self.accesses:
            raise SimulationError(
                "cannot normalize across different traces: "
                f"{self.accesses} vs {baseline.accesses} accesses"
            )
        if baseline.misses == 0:
            return 1.0 if self.misses == 0 else float("inf")
        return self.misses / baseline.misses


def normalized_miss_table(
    results: Mapping[str, SimResult], baseline: str
) -> Dict[str, float]:
    """Miss counts of every policy normalized to ``baseline``."""
    if baseline not in results:
        raise SimulationError(f"baseline policy {baseline!r} missing from results")
    base = results[baseline]
    return {
        name: result.misses_normalized_to(base) for name, result in results.items()
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, conventionally used for normalized ratios."""
    if not values:
        raise SimulationError("geometric mean of an empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise SimulationError(f"geometric mean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def average_normalized_misses(
    per_frame: Sequence[Mapping[str, SimResult]],
    policy: str,
    baseline: str = "drrip",
) -> float:
    """Average (arithmetic, as in the paper's "average savings") of the
    per-frame normalized miss counts of ``policy`` vs ``baseline``."""
    ratios: List[float] = []
    for frame_results in per_frame:
        ratios.append(
            frame_results[policy].misses_normalized_to(frame_results[baseline])
        )
    return sum(ratios) / len(ratios) if ratios else 1.0
