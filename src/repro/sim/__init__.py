"""Offline LLC simulation: trace replay, results, and epoch analysis."""

from repro.sim.offline import simulate_trace
from repro.sim.results import SimResult
from repro.sim.epochs import EpochStats, EpochTracker
from repro.sim.future import next_use_indices

__all__ = [
    "simulate_trace",
    "SimResult",
    "EpochStats",
    "EpochTracker",
    "next_use_indices",
]
