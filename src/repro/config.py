"""Configuration dataclasses and paper presets.

The baseline machine of Section 4 of the paper:

* GPU: 96 shader cores @ 1.6 GHz, 8 thread contexts per core (768 total),
  two 4-wide SIMD ALU pipes per core, 12 fixed-function texture samplers
  @ 1.6 GHz (4 texels/cycle each).
* Render caches: 1 KB 16-way vertex-index, 16 KB 128-way vertex, 12 KB
  24-way HiZ, 16 KB 16-way stencil, 24 KB 24-way render target, 32 KB
  32-way Z, and a three-level texture hierarchy whose L3 is 384 KB 48-way.
* LLC: non-inclusive/non-exclusive 8 MB, 16-way, 64 B blocks, 4 banks
  (2 MB/bank), 4 GHz, minimum 20-cycle load-to-use.
* DRAM: dual-channel DDR3-1600, 8 banks/channel, burst length 8,
  15-15-15 (tCAS-tRCD-tRP).

Because the reproduction renders synthetic frames in pure Python, a
*scale model* shrinks the frame resolution and, proportionally, every
capacity in the memory hierarchy.  Cache behaviour is governed by the
working-set : capacity ratio, which uniform scaling preserves; the
experiment harness runs at ``scale=1/8`` by default and supports
``scale=1.0`` (paper scale) for full-size runs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.errors import ConfigError
from repro.utils.bitops import ilog2, is_power_of_two

KB = 1024
MB = 1024 * KB


@dataclasses.dataclass(frozen=True)
class CacheParams:
    """Geometry of one set-associative cache."""

    capacity_bytes: int
    ways: int
    block_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.ways <= 0 or self.block_bytes <= 0:
            raise ConfigError(f"cache parameters must be positive: {self}")
        blocks = self.capacity_bytes // self.block_bytes
        if blocks * self.block_bytes != self.capacity_bytes:
            raise ConfigError(
                f"capacity {self.capacity_bytes} not a multiple of block "
                f"size {self.block_bytes}"
            )
        if blocks % self.ways != 0:
            raise ConfigError(
                f"{blocks} blocks not divisible by {self.ways} ways"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )
        ilog2(self.block_bytes)  # must also be a power of two

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.ways

    def scaled(self, factor: float, min_sets: int = 2) -> "CacheParams":
        """Return a copy with capacity scaled by ``factor``.

        The way count and block size are preserved; the set count is
        rounded to the nearest power of two and clamped to ``min_sets``
        so that very small scales still yield a working cache.
        """
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        target_sets = self.num_sets * factor
        sets = max(min_sets, 2 ** max(1, round(math.log2(max(target_sets, 2)))))
        return CacheParams(
            capacity_bytes=sets * self.ways * self.block_bytes,
            ways=self.ways,
            block_bytes=self.block_bytes,
        )


@dataclasses.dataclass(frozen=True)
class LLCConfig:
    """Geometry and policy substrate of the shared last-level cache."""

    params: CacheParams = CacheParams(8 * MB, ways=16)
    banks: int = 4
    #: One sample set per ``sample_period`` sets ("sixteen sets in every
    #: 1024 LLC sets" => period 64).
    sample_period: int = 64
    rrpv_bits: int = 2

    def __post_init__(self) -> None:
        if not is_power_of_two(self.banks):
            raise ConfigError(f"bank count must be a power of two: {self.banks}")
        if self.params.num_sets % self.banks != 0:
            raise ConfigError(
                f"{self.params.num_sets} sets not divisible by {self.banks} banks"
            )
        if self.sample_period < 2:
            raise ConfigError("sample period must be >= 2")
        if not 1 <= self.rrpv_bits <= 8:
            raise ConfigError("rrpv_bits must be in [1, 8]")

    @property
    def num_sets(self) -> int:
        return self.params.num_sets

    @property
    def ways(self) -> int:
        return self.params.ways

    @property
    def block_bytes(self) -> int:
        return self.params.block_bytes

    @property
    def sets_per_bank(self) -> int:
        return self.params.num_sets // self.banks

    def scaled(self, factor: float) -> "LLCConfig":
        # Banks shrink with the square root of the capacity factor so the
        # per-bank counter groups keep enough sample sets to produce
        # meaningful statistics (the paper has 32 sample sets per bank).
        banks = self.banks
        while banks > 1 and banks * banks > self.banks * self.banks * factor:
            banks //= 2
        params = self.params.scaled(factor, min_sets=banks * 2)
        # Keep roughly eight sample sets per bank (the paper's ratio
        # would leave a scaled cache with only one or two samples, far
        # too noisy to learn probabilities from), while never dedicating
        # more than a quarter of the sets.
        period = min(self.sample_period, max(4, params.num_sets // banks // 8))
        return dataclasses.replace(
            self, params=params, banks=banks, sample_period=period
        )


@dataclasses.dataclass(frozen=True)
class RenderCachesConfig:
    """The small per-stream render caches in front of the LLC (Section 4)."""

    vertex_index: CacheParams = CacheParams(1 * KB, ways=16)
    vertex: CacheParams = CacheParams(16 * KB, ways=128)
    hiz: CacheParams = CacheParams(12 * KB, ways=24)
    stencil: CacheParams = CacheParams(16 * KB, ways=16)
    render_target: CacheParams = CacheParams(24 * KB, ways=24)
    z: CacheParams = CacheParams(32 * KB, ways=32)
    #: Three-level texture hierarchy; the paper specifies only L3
    #: (384 KB 48-way).  L1/L2 sizes follow typical GPU designs.
    texture_l1: CacheParams = CacheParams(16 * KB, ways=8)
    texture_l2: CacheParams = CacheParams(128 * KB, ways=16)
    texture_l3: CacheParams = CacheParams(384 * KB, ways=48)

    def scaled(self, factor: float) -> "RenderCachesConfig":
        return RenderCachesConfig(
            **{
                field.name: getattr(self, field.name).scaled(factor)
                for field in dataclasses.fields(self)
            }
        )


@dataclasses.dataclass(frozen=True)
class DRAMConfig:
    """DDR3 channel/bank/row-buffer timing model parameters.

    Latencies are in memory-controller cycles at ``bus_mhz``; a burst of
    ``burst_length`` transfers moves ``burst_length * bus_bytes`` bytes
    (one 64 B cache block for BL8 on a 64-bit bus).
    """

    name: str = "DDR3-1600 15-15-15"
    channels: int = 2
    banks_per_channel: int = 8
    bus_mhz: float = 800.0          # DDR => 1600 MT/s
    bus_bytes: int = 8              # 64-bit channel
    burst_length: int = 8
    tcas: int = 15
    trcd: int = 15
    trp: int = 15
    row_bytes: int = 8 * KB

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("DRAM must have positive channel/bank counts")
        if min(self.tcas, self.trcd, self.trp) < 0:
            raise ConfigError("DRAM latencies must be non-negative")

    @property
    def transfer_cycles(self) -> int:
        """Data-bus cycles occupied by one burst (BL8 = 4 DDR bus cycles)."""
        return max(1, self.burst_length // 2)

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s across all channels."""
        transfers_per_sec = self.bus_mhz * 1e6 * 2  # double data rate
        return self.channels * transfers_per_sec * self.bus_bytes / 1e9

    @property
    def cycle_ns(self) -> float:
        return 1e3 / self.bus_mhz

    def row_hit_ns(self) -> float:
        return (self.tcas + self.transfer_cycles) * self.cycle_ns

    def row_miss_ns(self) -> float:
        return (self.trp + self.trcd + self.tcas + self.transfer_cycles) * self.cycle_ns


#: The baseline DRAM of Section 4.
DDR3_1600 = DRAMConfig()

#: The faster DRAM of the Section 5.4 sensitivity study.
DDR3_1867 = DRAMConfig(
    name="DDR3-1867 10-10-10", bus_mhz=933.5, tcas=10, trcd=10, trp=10
)


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Compute-side parameters of the simulated GPU."""

    name: str = "baseline-96c"
    shader_cores: int = 96
    threads_per_core: int = 8
    core_clock_ghz: float = 1.6
    #: Two 4-wide single-precision SIMD pipes per core (with MAC) =>
    #: 16 FLOPs/cycle/core => ~2.5 TFLOPS aggregate at 1.6 GHz.
    flops_per_core_cycle: int = 16
    texture_samplers: int = 12
    sampler_clock_ghz: float = 1.6
    texels_per_sampler_cycle: int = 4
    llc_clock_ghz: float = 4.0
    llc_latency_cycles: int = 20

    def __post_init__(self) -> None:
        if self.shader_cores <= 0 or self.threads_per_core <= 0:
            raise ConfigError("GPU must have positive core/thread counts")

    @property
    def thread_contexts(self) -> int:
        return self.shader_cores * self.threads_per_core

    @property
    def peak_tflops(self) -> float:
        return (
            self.shader_cores * self.flops_per_core_cycle * self.core_clock_ghz
        ) / 1e3

    @property
    def peak_texel_rate_gtexels(self) -> float:
        return (
            self.texture_samplers
            * self.texels_per_sampler_cycle
            * self.sampler_clock_ghz
        )

    @property
    def llc_latency_ns(self) -> float:
        return self.llc_latency_cycles / self.llc_clock_ghz


#: Baseline GPU of Section 4 (2.5 TFLOPS class).
GPU_BASELINE = GPUConfig()

#: The "less aggressive" GPU of Section 5.4: 64 cores (512 thread
#: contexts) and 8 texture samplers; everything else unchanged.
GPU_SMALL = GPUConfig(name="small-64c", shader_cores=64, texture_samplers=8)


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Complete simulated system: GPU + render caches + LLC + DRAM."""

    llc: LLCConfig = LLCConfig()
    render_caches: RenderCachesConfig = RenderCachesConfig()
    gpu: GPUConfig = GPU_BASELINE
    dram: DRAMConfig = DDR3_1600
    #: Linear frame-scale factor relative to the paper's resolutions.
    scale: float = 1.0

    def scaled(self, scale: float) -> "SystemConfig":
        """Derive a resolution-scaled system.

        Capacities scale with pixel count (``scale**2``); timing
        parameters are left untouched, since latency and bandwidth per
        block are resolution-independent.
        """
        if scale <= 0 or scale > 1:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        area = scale * scale
        return dataclasses.replace(
            self,
            llc=self.llc.scaled(area),
            render_caches=self.render_caches.scaled(area),
            scale=self.scale * scale,
        )


def paper_baseline(
    llc_mb: int = 8,
    scale: float = 1.0,
    gpu: Optional[GPUConfig] = None,
    dram: Optional[DRAMConfig] = None,
) -> SystemConfig:
    """The Section-4 baseline system, optionally resized and scaled.

    ``llc_mb`` selects the LLC capacity (8 MB baseline, 16 MB for the
    Figure 16 study); ``scale`` shrinks the whole memory system for fast
    simulation (see module docstring).
    """
    llc = LLCConfig(params=CacheParams(llc_mb * MB, ways=16))
    system = SystemConfig(
        llc=llc,
        gpu=gpu or GPU_BASELINE,
        dram=dram or DDR3_1600,
    )
    if scale != 1.0:
        system = system.scaled(scale)
    return system


#: Default scale used by tests and the reduced-scale benchmark harness.
DEFAULT_SCALE = 0.125
