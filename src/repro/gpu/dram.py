"""DDR3 timing model.

Models what matters for the paper's performance figures: per-channel data
bus occupancy, row-buffer locality (row hits pay tCAS, row misses pay
tRP + tRCD + tCAS), and bank-level parallelism that overlaps row
preparation with data transfer.  Requests are accumulated per *window*
(the frame-time simulator integrates window by window); the model keeps
open-row state across windows.
"""

from __future__ import annotations

from typing import List

from repro.config import DRAMConfig
from repro.utils.bitops import ilog2


class DRAMTimingModel:
    """Window-based DDR timing with open-page row-buffer policy."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self.channel_bits = ilog2(config.channels)
        # Channel interleaving on block address, banks on the next bits.
        self._bank_mask = config.banks_per_channel - 1
        ilog2(config.banks_per_channel)
        self._row_shift = ilog2(config.row_bytes)
        #: Open row per (channel, bank); -1 = closed.
        self._open_row: List[List[int]] = [
            [-1] * config.banks_per_channel for _ in range(config.channels)
        ]
        self._reset_window()
        # Lifetime counters.
        self.total_requests = 0
        self.total_row_hits = 0

    def _reset_window(self) -> None:
        channels = self.config.channels
        self._data_cycles = [0.0] * channels
        self._prep_cycles = [0.0] * channels

    # -- request accounting -------------------------------------------------

    def request(self, address: int, is_write: bool = False) -> None:
        """Account one 64 B block transfer."""
        config = self.config
        block = address >> 6
        channel = block & (config.channels - 1)
        bank = (block >> self.channel_bits) & self._bank_mask
        row = address >> self._row_shift
        open_rows = self._open_row[channel]
        self.total_requests += 1
        if open_rows[bank] == row:
            self.total_row_hits += 1
            self._prep_cycles[channel] += config.tcas
        else:
            open_rows[bank] = row
            self._prep_cycles[channel] += config.trp + config.trcd + config.tcas
        self._data_cycles[channel] += config.transfer_cycles

    def writeback(self) -> None:
        """Account one write-back whose victim address is unknown.

        Write-backs are drained opportunistically; charge an average
        cost of a half row-miss on the least-loaded channel.
        """
        config = self.config
        channel = min(
            range(config.channels), key=lambda c: self._data_cycles[c]
        )
        self.total_requests += 1
        self._prep_cycles[channel] += (config.trp + config.trcd + config.tcas) / 2
        self._data_cycles[channel] += config.transfer_cycles

    # -- window integration ----------------------------------------------------

    def drain_window_ns(self) -> float:
        """Service time of the window's requests; resets window state.

        Per channel, data-bus occupancy is a hard floor; row preparation
        overlaps across banks, so it only binds when it exceeds the data
        time even after being spread over half the banks (a typical
        achievable bank-level parallelism under an FR-FCFS scheduler).
        """
        config = self.config
        parallelism = max(1.0, config.banks_per_channel / 2)
        worst = 0.0
        for channel in range(config.channels):
            busy = max(
                self._data_cycles[channel],
                self._prep_cycles[channel] / parallelism,
            )
            worst = max(worst, busy)
        self._reset_window()
        return worst * config.cycle_ns

    @property
    def row_hit_rate(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.total_row_hits / self.total_requests

    def average_latency_ns(self) -> float:
        """Typical single-request latency given observed row locality."""
        config = self.config
        hit = self.row_hit_rate
        return hit * config.row_hit_ns() + (1.0 - hit) * config.row_miss_ns()
