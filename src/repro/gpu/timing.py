"""Frame-time simulation: LLC trace -> frames per second.

The simulator replays a frame's LLC access trace through a functional
LLC (any replacement policy) while integrating time window by window.
Within a window, shading/fixed-function compute, LLC bank occupancy and
DRAM service largely overlap — a GPU is a throughput machine — so the
window's duration is their maximum plus the latency that the thread
contexts could not hide.  This reproduces the paper's observed
convexity: small LLC miss savings vanish inside the overlap (GS-DRRIP's
2.9% fewer misses bought only 0.8% speedup), while large savings shift
whole windows off the DRAM bound (GSPC's 13% bought 8%).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, Optional

from repro.cache.llc import BYPASS, MISS
from repro.config import SystemConfig
from repro.core.base import NEVER
from repro.gpu.dram import DRAMTimingModel
from repro.gpu.llc_timing import LLCTimingModel
from repro.gpu.shader import ShaderModel
from repro.obs.spans import SpanRecorder
from repro.sim.offline import PolicyLike, build_llc
from repro.sim.future import next_use_indices
from repro.streams import Stream
from repro.trace.record import Trace

#: Accesses integrated per timing window.
WINDOW_ACCESSES = 4096


@dataclasses.dataclass
class FrameTiming:
    """Timing outcome of one rendered frame."""

    policy: str
    frame_ns: float
    compute_ns: float
    dram_ns: float
    llc_ns: float
    exposed_ns: float
    accesses: int
    misses: int
    dram_row_hit_rate: float
    #: Linear frame scale the trace was generated at (for FPS correction).
    scale: float = 1.0
    #: Wall-clock spent preparing the run (array conversion, next-use
    #: precompute) vs. integrating the windows — mirrors
    #: :class:`~repro.sim.results.SimResult`.
    setup_seconds: float = 0.0
    replay_seconds: float = 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self.setup_seconds + self.replay_seconds

    def to_dict(self) -> Dict[str, float]:
        """Manifest-ready summary of the modeled frame."""
        return {
            "policy": self.policy,
            "frame_ns": self.frame_ns,
            "compute_ns": self.compute_ns,
            "dram_ns": self.dram_ns,
            "llc_ns": self.llc_ns,
            "exposed_ns": self.exposed_ns,
            "accesses": self.accesses,
            "misses": self.misses,
            "dram_row_hit_rate": self.dram_row_hit_rate,
            "scale": self.scale,
            "fps": self.fps,
            "fps_full_scale": self.fps_full_scale,
        }

    @property
    def fps(self) -> float:
        """Frames per second at the trace's own (possibly reduced) scale."""
        return 1e9 / self.frame_ns if self.frame_ns > 0 else 0.0

    @property
    def fps_full_scale(self) -> float:
        """FPS corrected to the paper's full frame resolution.

        A trace generated at linear scale ``s`` has ``s**2`` of the
        full frame's work, so the full-scale frame would take about
        ``frame_ns / s**2``.
        """
        if self.frame_ns <= 0:
            return 0.0
        return 1e9 / (self.frame_ns / (self.scale * self.scale))

    def speedup_over(self, baseline: "FrameTiming") -> float:
        return baseline.frame_ns / self.frame_ns


class FrameTimingSimulator:
    """Reusable timing simulator for one system configuration."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system

    def run(
        self,
        trace: Trace,
        policy: PolicyLike,
        spans: Optional[SpanRecorder] = None,
    ) -> FrameTiming:
        system = self.system
        if spans is None:
            spans = SpanRecorder()
        dram = DRAMTimingModel(system.dram)
        # Dirty evictions reach DRAM with their true victim addresses,
        # so write traffic participates in row-locality modeling.
        llc = build_llc(
            policy,
            system.llc,
            writeback_sink=lambda address: dram.request(address, True),
        )
        shader = ShaderModel(system.gpu)
        llc_timing = LLCTimingModel(system.llc, system.gpu)

        setup_started = time.perf_counter()
        with spans.span("setup"):
            addresses = trace.addresses.tolist()
            streams = trace.streams.tolist()
            writes = trace.writes.tolist()
            if llc.policy.needs_future:
                next_uses = next_use_indices(
                    trace.block_addresses(system.llc.block_bytes)
                ).tolist()
            else:
                next_uses = None
        setup_seconds = time.perf_counter() - setup_started

        total_ns = 0.0
        compute_total = 0.0
        dram_total = 0.0
        llc_total = 0.0
        exposed_total = 0.0
        window_counts: Dict[int, int] = {int(s): 0 for s in Stream}
        window_misses = 0
        window_lookups = 0
        access = llc.access

        def close_window() -> None:
            nonlocal total_ns, compute_total, dram_total, llc_total
            nonlocal exposed_total, window_misses, window_lookups
            dram_ns = dram.drain_window_ns()
            compute_ns = shader.compute_ns(window_counts)
            llc_ns = llc_timing.occupancy_ns(window_lookups)
            miss_latency = dram.average_latency_ns() + llc_timing.hit_latency_ns
            exposed_ns = shader.exposed_latency_ns(window_misses, miss_latency)
            total_ns += max(compute_ns, dram_ns, llc_ns) + exposed_ns
            compute_total += compute_ns
            dram_total += dram_ns
            llc_total += llc_ns
            exposed_total += exposed_ns
            for key in window_counts:
                window_counts[key] = 0
            window_misses = 0
            window_lookups = 0

        replay_started = time.perf_counter()
        with spans.span("replay"):
            for index, (address, stream, write) in enumerate(
                zip(addresses, streams, writes)
            ):
                next_use = next_uses[index] if next_uses is not None else NEVER
                outcome = access(address, stream, write, next_use)
                window_counts[stream] += 1
                window_lookups += 1
                if outcome == MISS:
                    dram.request(address, False)
                    window_misses += 1
                elif outcome == BYPASS:
                    # Uncached accesses go straight to DRAM (read or write).
                    dram.request(address, write)
                if (index + 1) % WINDOW_ACCESSES == 0:
                    close_window()
            close_window()
        replay_seconds = time.perf_counter() - replay_started

        return FrameTiming(
            policy=llc.policy.name,
            frame_ns=total_ns,
            compute_ns=compute_total,
            dram_ns=dram_total,
            llc_ns=llc_total,
            exposed_ns=exposed_total,
            accesses=len(trace),
            misses=llc.stats.misses,
            dram_row_hit_rate=dram.row_hit_rate,
            scale=float(trace.meta.get("scale", system.scale or 1.0)),
            setup_seconds=setup_seconds,
            replay_seconds=replay_seconds,
        )


def simulate_frame_timing(
    trace: Trace,
    policy: PolicyLike,
    system: Optional[SystemConfig] = None,
) -> FrameTiming:
    """Convenience wrapper around :class:`FrameTimingSimulator`."""
    return FrameTimingSimulator(system or SystemConfig()).run(trace, policy)


def average_fps(timings: Iterable[FrameTiming]) -> float:
    """Average full-scale FPS over frames (harmonic would overweight
    slow frames; the paper reports plain per-frame averages)."""
    values = [timing.fps_full_scale for timing in timings]
    return sum(values) / len(values) if values else 0.0
