"""LLC service-time model.

The banked LLC (four 2 MB banks at 4 GHz, 20-cycle load-to-use) limits
throughput to one lookup per bank per cycle; its latency contribution is
folded into the exposed-latency term of the shader model.
"""

from __future__ import annotations

from repro.config import GPUConfig, LLCConfig


class LLCTimingModel:
    """Throughput/latency of the shared LLC."""

    def __init__(self, llc: LLCConfig, gpu: GPUConfig) -> None:
        self.llc = llc
        self.gpu = gpu
        #: One lookup per bank per LLC cycle.
        self.lookups_per_ns = llc.banks * gpu.llc_clock_ghz

    def occupancy_ns(self, lookups: int) -> float:
        """Bank-limited service time for a window's lookups."""
        return lookups / self.lookups_per_ns

    @property
    def hit_latency_ns(self) -> float:
        return self.gpu.llc_latency_ns
