"""GPU timing models: DRAM, LLC occupancy, shader compute, frame time."""

from repro.gpu.dram import DRAMTimingModel
from repro.gpu.timing import FrameTiming, FrameTimingSimulator, simulate_frame_timing

__all__ = [
    "DRAMTimingModel",
    "FrameTiming",
    "FrameTimingSimulator",
    "simulate_frame_timing",
]
