"""Shader-core compute and latency-hiding model.

The GPUs of the paper hide most memory latency behind fast thread
switching (Section 5.3: "it is necessary to save a significantly large
volume of LLC misses to achieve reasonable performance improvements").
We model that with two terms:

* a *throughput* term — shading/sampling work proportional to the
  pipeline activity implied by each stream's accesses, divided by the
  aggregate shader/sampler throughput; and
* an *exposed-latency* term — each LLC miss contributes its DRAM latency
  divided by the number of thread contexts available to overlap it, so a
  GPU with fewer contexts (the Section 5.4 study) exposes more latency.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.streams import Stream

#: Shader + fixed-function work (in single-precision FLOP equivalents)
#: implied by one LLC-level access of each stream.  One 64 B texture
#: block feeds 16 texels of filtering; one RT block covers 16 pixels of
#: shading; Z/HiZ/stencil blocks imply cheap fixed-function tests.
#: Vertex blocks imply transform work.  Calibrated so that the baseline
#: GPU is moderately memory-bound, as the paper's speedup-vs-miss-savings
#: ratio implies.
WORK_FLOPS_PER_ACCESS = {
    int(Stream.VERTEX): 4800.0,
    int(Stream.HIZ): 600.0,
    int(Stream.Z): 300.0,
    int(Stream.STENCIL): 150.0,
    int(Stream.RT): 2800.0,
    int(Stream.TEXTURE): 4000.0,
    int(Stream.DISPLAY): 400.0,
    int(Stream.OTHER): 400.0,
}


class ShaderModel:
    """Converts per-window access counts into compute time."""

    def __init__(self, gpu: GPUConfig) -> None:
        self.gpu = gpu
        #: Aggregate FLOPs per nanosecond.
        self.flops_per_ns = gpu.peak_tflops * 1e3
        #: Achievable fraction of peak on real shader mixes.
        self.efficiency = 0.55

    def compute_ns(self, stream_counts) -> float:
        """Shading time of one window given per-stream access counts."""
        flops = 0.0
        for stream, count in stream_counts.items():
            flops += WORK_FLOPS_PER_ACCESS[int(stream)] * count
        return flops / (self.flops_per_ns * self.efficiency)

    def exposed_latency_ns(self, misses: int, miss_latency_ns: float) -> float:
        """Latency not hidden by multithreading.

        With ``T`` thread contexts, up to ``T`` misses overlap; the
        exposed component per miss is therefore ``latency / T`` in the
        aggregate (an Amdahl-style approximation of round-robin
        latency hiding).
        """
        if misses <= 0:
            return 0.0
        return misses * miss_latency_ns / self.gpu.thread_contexts
