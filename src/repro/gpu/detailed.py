"""Event-driven detailed GPU timing model.

The windowed model (:mod:`repro.gpu.timing`) integrates throughput
bounds; this model replays the trace through explicit queueing state —
per-thread-context availability, a bounded pool of outstanding misses
(MSHRs), per-bank DRAM service with open-row tracking, and per-channel
data-bus occupancy — the machinery a detailed simulator like the
paper's in-house one resolves cycle by cycle.

Each LLC access is issued by one of the GPU's thread contexts
(round-robin over *warps* of consecutive accesses, modeling the quads a
shader core keeps in flight).  A context performs some compute, issues
its access, and for reads blocks until the data returns; an LLC miss
additionally occupies an MSHR from issue to fill.  Frame time is when
the last context drains.

The model is deliberately still analytic — no event heap, one pass over
the trace with O(1) state per resource — so it stays fast enough to run
inside experiments, yet exhibits queueing effects the windowed model
cannot: MSHR saturation, bank conflicts, and burstiness.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional

from repro.cache.llc import HIT, MISS
from repro.config import SystemConfig
from repro.core.base import NEVER
from repro.gpu.shader import WORK_FLOPS_PER_ACCESS
from repro.sim.future import next_use_indices
from repro.sim.offline import PolicyLike, build_llc
from repro.trace.record import Trace
from repro.utils.bitops import ilog2

#: Consecutive accesses issued by one thread context before rotating —
#: roughly the memory operations of one shaded quad.
WARP_ACCESSES = 4

#: Outstanding misses supported per LLC bank (MSHR pool).
MSHRS_PER_BANK = 32


@dataclasses.dataclass
class DetailedTiming:
    """Outcome of one detailed-model run."""

    policy: str
    frame_ns: float
    accesses: int
    misses: int
    #: Fraction of issue attempts that found every MSHR busy.
    mshr_stall_fraction: float
    #: DRAM row-buffer hit rate observed by misses.
    row_hit_rate: float
    scale: float = 1.0

    @property
    def fps(self) -> float:
        return 1e9 / self.frame_ns if self.frame_ns > 0 else 0.0

    @property
    def fps_full_scale(self) -> float:
        if self.frame_ns <= 0:
            return 0.0
        return 1e9 / (self.frame_ns / (self.scale * self.scale))

    def speedup_over(self, baseline: "DetailedTiming") -> float:
        return baseline.frame_ns / self.frame_ns


class DetailedGPUSimulator:
    """Replays LLC traces through the queueing model."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system

    def run(self, trace: Trace, policy: PolicyLike) -> DetailedTiming:
        system = self.system
        gpu, dram = system.gpu, system.dram
        pending_writebacks: List[int] = []
        llc = build_llc(
            policy, system.llc, writeback_sink=pending_writebacks.append
        )

        flops_per_ns = gpu.peak_tflops * 1e3 * 0.55
        contexts = gpu.thread_contexts
        llc_hit_ns = gpu.llc_latency_ns
        cycle_ns = dram.cycle_ns
        row_hit_ns = dram.row_hit_ns()
        row_miss_ns = dram.row_miss_ns()
        transfer_ns = dram.transfer_cycles * cycle_ns

        channel_bits = ilog2(dram.channels)
        bank_mask = dram.banks_per_channel - 1
        row_shift = ilog2(dram.row_bytes)

        #: Next-free time per thread context (a min-heap: issuing on the
        #: earliest-available context models greedy warp scheduling).
        context_free: List[float] = [0.0] * contexts
        heapq.heapify(context_free)
        #: Next-free time per (channel, bank) and per channel data bus.
        bank_free = [
            [0.0] * dram.banks_per_channel for _ in range(dram.channels)
        ]
        bus_free = [0.0] * dram.channels
        open_row = [
            [-1] * dram.banks_per_channel for _ in range(dram.channels)
        ]
        #: Completion times of in-flight misses (bounded MSHR pool).
        mshrs: List[float] = []
        mshr_capacity = MSHRS_PER_BANK * system.llc.banks

        addresses = trace.addresses.tolist()
        streams = trace.streams.tolist()
        writes = trace.writes.tolist()
        if llc.policy.needs_future:
            next_uses = next_use_indices(
                trace.block_addresses(system.llc.block_bytes)
            ).tolist()
        else:
            next_uses = None

        access = llc.access
        finish_time = 0.0
        mshr_stalls = 0
        row_hits = 0
        miss_count = 0
        warp_ready = 0.0
        position_in_warp = 0

        for index in range(len(addresses)):
            address = addresses[index]
            stream = streams[index]
            write = writes[index]
            if position_in_warp == 0:
                # Rotate to the earliest-free context for the next warp.
                warp_ready = heapq.heappop(context_free)
            position_in_warp = (position_in_warp + 1) % WARP_ACCESSES

            compute_ns = WORK_FLOPS_PER_ACCESS[stream] / flops_per_ns
            issue = warp_ready + compute_ns
            next_use = next_uses[index] if next_uses is not None else NEVER
            outcome = access(address, stream, write, next_use)

            if outcome == HIT:
                done = issue + llc_hit_ns
            else:
                # Reads (misses and bypasses) go to DRAM; an LLC miss
                # also needs a free MSHR.
                if outcome == MISS:
                    miss_count += 1
                    while len(mshrs) >= mshr_capacity:
                        released = heapq.heappop(mshrs)
                        if released > issue:
                            mshr_stalls += 1
                            issue = released
                block = address >> 6
                channel = block & (dram.channels - 1)
                bank = (block >> channel_bits) & bank_mask
                row = address >> row_shift
                start = max(issue, bank_free[channel][bank],
                            bus_free[channel])
                if open_row[channel][bank] == row:
                    row_hits += 1
                    service = row_hit_ns
                else:
                    open_row[channel][bank] = row
                    service = row_miss_ns
                done = start + service
                bank_free[channel][bank] = done
                bus_free[channel] = max(bus_free[channel], start) + transfer_ns
                if outcome == MISS:
                    heapq.heappush(mshrs, done)
                done += llc_hit_ns

            if pending_writebacks:
                # Dirty evictions drain to DRAM as posted writes at
                # their true victim addresses (no context blocking).
                for victim_address in pending_writebacks:
                    victim_block = victim_address >> 6
                    wb_channel = victim_block & (dram.channels - 1)
                    wb_bank = (victim_block >> channel_bits) & bank_mask
                    wb_row = victim_address >> row_shift
                    wb_start = max(
                        issue,
                        bank_free[wb_channel][wb_bank],
                        bus_free[wb_channel],
                    )
                    if open_row[wb_channel][wb_bank] == wb_row:
                        wb_service = row_hit_ns
                    else:
                        open_row[wb_channel][wb_bank] = wb_row
                        wb_service = row_miss_ns
                    bank_free[wb_channel][wb_bank] = wb_start + wb_service
                    bus_free[wb_channel] = (
                        max(bus_free[wb_channel], wb_start) + transfer_ns
                    )
                pending_writebacks.clear()

            if write and outcome != HIT:
                # Posted writes do not block the context.
                done = issue + llc_hit_ns
            warp_ready = max(warp_ready, done if not write else issue)
            if position_in_warp == 0:
                heapq.heappush(context_free, warp_ready)
            finish_time = max(finish_time, done)

        # Drain the contexts still holding partial warps.
        if position_in_warp != 0:
            heapq.heappush(context_free, warp_ready)
        while context_free:
            finish_time = max(finish_time, heapq.heappop(context_free))

        total_memory_ops = max(1, llc.stats.misses + llc.stats.bypasses)
        return DetailedTiming(
            policy=llc.policy.name,
            frame_ns=finish_time,
            accesses=len(trace),
            misses=llc.stats.misses,
            mshr_stall_fraction=mshr_stalls / max(1, llc.stats.misses),
            row_hit_rate=row_hits / total_memory_ops,
            scale=float(trace.meta.get("scale", system.scale or 1.0)),
        )


def simulate_frame_detailed(
    trace: Trace, policy: PolicyLike, system: Optional[SystemConfig] = None
) -> DetailedTiming:
    """Convenience wrapper around :class:`DetailedGPUSimulator`."""
    return DetailedGPUSimulator(system or SystemConfig()).run(trace, policy)
