"""Reuse-distance analysis.

A trace's *reuse-distance profile* — for each access, how many distinct
blocks were touched since the previous access to the same block —
determines what any capacity-limited cache can do with it, independent
of policy.  These tools diagnose the synthetic workloads: the paper's
qualitative results need a specific mixture of immediate reuse
(absorbed by render caches), mid-range reuse (policy-sensitive), and
far cyclic reuse (OPT-only).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.streams import Stream
from repro.trace.record import Trace

#: Marker for cold (first-touch) accesses.
COLD = -1


def reuse_distances(blocks: Sequence[int]) -> np.ndarray:
    """Exact LRU stack distances, ``COLD`` for first touches.

    Runs in O(n log n) using a Fenwick tree over access timestamps —
    fast enough for multi-hundred-thousand-access frames.
    """
    n = len(blocks)
    distances = np.full(n, COLD, dtype=np.int64)
    last_position: Dict[int, int] = {}
    # Fenwick tree marking positions that are each block's most recent
    # access; the stack distance is the count of marked positions after
    # the previous access to this block.
    tree = [0] * (n + 1)

    def update(position: int, delta: int) -> None:
        index = position + 1
        while index <= n:
            tree[index] += delta
            index += index & (-index)

    def prefix_sum(position: int) -> int:
        index = position + 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    for position, block in enumerate(blocks):
        previous = last_position.get(block)
        if previous is not None:
            # Distinct blocks touched strictly between the accesses.
            distances[position] = prefix_sum(position - 1) - prefix_sum(previous)
            update(previous, -1)
        last_position[block] = position
        update(position, +1)
    return distances


@dataclasses.dataclass(frozen=True)
class ReuseProfile:
    """Histogram summary of a trace's reuse distances."""

    accesses: int
    cold: int
    #: (upper_bound_exclusive, count) pairs; the last bound is inf.
    histogram: Tuple[Tuple[float, int], ...]
    median_distance: Optional[float]

    @property
    def cold_fraction(self) -> float:
        return self.cold / self.accesses if self.accesses else 0.0

    def hit_rate_at_capacity(self, capacity_blocks: int) -> float:
        """Hit rate of a fully-associative LRU cache of that capacity.

        By Mattson's stack-inclusion property, every access with stack
        distance < capacity hits; this bounds set-associative caches
        from above and gives a policy-free view of the trace.
        """
        if self.accesses == 0:
            return 0.0
        hits = 0
        for bound, count in self.histogram:
            if bound <= capacity_blocks:
                hits += count
        return hits / self.accesses


def compute_reuse_profile(
    trace: Trace,
    stream: Optional[Stream] = None,
    bounds: Sequence[int] = (16, 64, 256, 1024, 4096, 16384, 65536),
) -> ReuseProfile:
    """Reuse-distance profile of a trace (optionally one stream only).

    With ``stream`` given, distances are still computed over the *full*
    trace (interleaving matters) but only that stream's accesses are
    histogrammed.
    """
    blocks = trace.block_addresses().tolist()
    distances = reuse_distances(blocks)
    if stream is not None:
        mask = trace.stream_mask(stream)
        selected = distances[mask]
    else:
        selected = distances
    warm = selected[selected != COLD]
    cold = int((selected == COLD).sum())
    histogram: List[Tuple[float, int]] = []
    previous_bound = 0
    for bound in bounds:
        count = int(((warm >= previous_bound) & (warm < bound)).sum())
        histogram.append((float(bound), count))
        previous_bound = bound
    histogram.append((float("inf"), int((warm >= previous_bound).sum())))
    return ReuseProfile(
        accesses=int(selected.size),
        cold=cold,
        histogram=tuple(histogram),
        median_distance=float(np.median(warm)) if warm.size else None,
    )
