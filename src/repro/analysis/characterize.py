"""Frame characterization: the measurements behind Section 2.

``characterize_frame`` runs one frame under one policy with an epoch
observer attached and returns everything Figures 4-9 need: the stream
access mix, per-stream hit rates, inter- vs intra-stream texture hits,
render-target consumption, and the epoch populations of the texture and
Z streams.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.cache.stats import LLCStats
from repro.config import LLCConfig
from repro.sim.epochs import EpochStats, EpochTracker, MultiEpochTracker
from repro.sim.offline import PolicyLike, simulate_trace
from repro.sim.results import SimResult
from repro.streams import Stream, StreamClass
from repro.trace.record import Trace
from repro.trace.stats import TraceStats, compute_trace_stats


@dataclasses.dataclass
class FrameCharacterization:
    """All Section-2 measurements for one (frame, policy) pair."""

    policy: str
    trace_stats: TraceStats
    llc_stats: LLCStats
    tex_epochs: EpochStats
    z_epochs: EpochStats
    result: SimResult

    # -- conveniences used by the figure modules -------------------------

    @property
    def tex_hit_rate(self) -> float:
        return self.llc_stats.tex_hit_rate

    @property
    def rt_hit_rate(self) -> float:
        return self.llc_stats.rt_hit_rate

    @property
    def z_hit_rate(self) -> float:
        return self.llc_stats.z_hit_rate

    @property
    def rt_consumption_rate(self) -> float:
        return self.llc_stats.rt_consumption_rate

    @property
    def tex_inter_hits(self) -> int:
        return self.llc_stats.tex_inter_hits

    @property
    def tex_intra_hits(self) -> int:
        return self.llc_stats.tex_intra_hits

    def stream_mix(self) -> Dict[Stream, float]:
        return self.trace_stats.mix()


def characterize_frame(
    trace: Trace,
    policy: PolicyLike = "belady",
    llc_config: Optional[LLCConfig] = None,
) -> FrameCharacterization:
    """Measure one frame under one policy with epoch tracking enabled."""
    llc_config = llc_config or LLCConfig()
    slots = llc_config.num_sets * llc_config.ways
    tex_tracker = EpochTracker(StreamClass.TEX, slots)
    z_tracker = EpochTracker(StreamClass.Z, slots)
    observer = MultiEpochTracker([tex_tracker, z_tracker])
    result = simulate_trace(trace, policy, llc_config, observer=observer)
    return FrameCharacterization(
        policy=result.policy,
        trace_stats=compute_trace_stats(trace),
        llc_stats=result.stats,
        tex_epochs=tex_tracker.finalize(),
        z_epochs=z_tracker.finalize(),
        result=result,
    )
