"""Miss classification: cold / capacity / conflict.

The classic three-C decomposition, computed from a policy run plus the
trace's exact LRU stack distances:

* **cold** — first touch of the block (no cache could hit);
* **capacity** — the block's reuse distance exceeds the cache's total
  block capacity (a fully-associative LRU cache of the same size would
  also miss);
* **conflict/policy** — everything else: the data was recently enough
  used that a fully-associative LRU cache would have kept it, so the
  miss is attributable to limited associativity or the replacement
  policy's choices.

This is a diagnostic for the reproduction itself: the paper's policies
can only reduce the third bucket (and the capacity bucket, for OPT-like
far-reuse capture), so its size bounds every possible improvement.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.reuse import COLD, reuse_distances
from repro.cache.llc import MISS
from repro.config import LLCConfig
from repro.sim.future import next_use_indices
from repro.sim.offline import PolicyLike, build_llc
from repro.trace.record import Trace


@dataclasses.dataclass(frozen=True)
class MissBreakdown:
    """Counts of each miss class for one (trace, policy, LLC) run."""

    accesses: int
    hits: int
    cold: int
    capacity: int
    conflict: int

    @property
    def misses(self) -> int:
        return self.cold + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        if self.misses == 0:
            return 0.0
        return getattr(self, kind) / self.misses


def classify_misses(
    trace: Trace,
    policy: PolicyLike,
    llc_config: Optional[LLCConfig] = None,
) -> MissBreakdown:
    """Run ``policy`` over ``trace`` and classify every miss."""
    llc = build_llc(policy, llc_config or LLCConfig())
    capacity_blocks = llc.geometry.num_sets * llc.geometry.ways
    blocks = trace.block_addresses(llc.geometry.block_bytes)
    distances = reuse_distances(blocks.tolist())
    if llc.policy.needs_future:
        next_uses = next_use_indices(blocks).tolist()
    else:
        next_uses = None

    hits = cold = capacity = conflict = 0
    access = llc.access
    addresses = trace.addresses.tolist()
    streams = trace.streams.tolist()
    writes = trace.writes.tolist()
    for index in range(len(addresses)):
        outcome = access(
            addresses[index],
            streams[index],
            writes[index],
            next_uses[index] if next_uses is not None else (1 << 62),
        )
        if outcome != MISS:
            hits += 1
            continue
        distance = distances[index]
        if distance == COLD:
            cold += 1
        elif distance >= capacity_blocks:
            capacity += 1
        else:
            conflict += 1
    return MissBreakdown(
        accesses=len(trace),
        hits=hits,
        cold=cold,
        capacity=capacity,
        conflict=conflict,
    )
