"""Characterization, reuse-distance, phase, and reporting helpers."""

from repro.analysis.characterize import (
    FrameCharacterization,
    characterize_frame,
)
from repro.analysis.misses import MissBreakdown, classify_misses
from repro.analysis.phases import PhaseWindow, detect_phase_changes, phase_profile
from repro.analysis.reuse import ReuseProfile, compute_reuse_profile, reuse_distances
from repro.analysis.tables import Table, format_table

__all__ = [
    "Table",
    "format_table",
    "characterize_frame",
    "FrameCharacterization",
    "MissBreakdown",
    "classify_misses",
    "PhaseWindow",
    "phase_profile",
    "detect_phase_changes",
    "ReuseProfile",
    "compute_reuse_profile",
    "reuse_distances",
]
