"""Phase analysis: windowed time series of LLC behaviour within a frame.

The paper simulates "the rendering of each frame entirely capturing
several distinct phase changes that occur as rendering progresses" —
shadow passes, geometry passes, post-processing and the final resolve
all stress the LLC differently.  :func:`phase_profile` records, per
fixed-size access window, the stream mix, hit rate, and render-target
consumption, so those phases become visible and the sampled-counter
dynamics of the GSPC family can be audited against them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.cache.llc import HIT
from repro.config import LLCConfig
from repro.sim.offline import PolicyLike, build_llc
from repro.streams import ALL_STREAMS, Stream
from repro.trace.record import Trace


@dataclasses.dataclass(frozen=True)
class PhaseWindow:
    """Aggregate behaviour of one window of consecutive LLC accesses."""

    start_index: int
    accesses: int
    hits: int
    #: accesses per stream within the window
    stream_counts: Dict[Stream, int]
    rt_consumed: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def stream_fraction(self, stream: Stream) -> float:
        if self.accesses == 0:
            return 0.0
        return self.stream_counts.get(stream, 0) / self.accesses

    @property
    def dominant_stream(self) -> Stream:
        return max(ALL_STREAMS, key=lambda s: self.stream_counts.get(s, 0))


def phase_profile(
    trace: Trace,
    policy: PolicyLike = "drrip",
    llc_config: Optional[LLCConfig] = None,
    window: int = 8192,
) -> List[PhaseWindow]:
    """Replay ``trace`` and return its per-window phase series."""
    llc = build_llc(policy, llc_config or LLCConfig())
    windows: List[PhaseWindow] = []
    counts: Dict[Stream, int] = {stream: 0 for stream in ALL_STREAMS}
    hits = 0
    consumed_before = 0
    start = 0
    access = llc.access
    addresses = trace.addresses.tolist()
    streams = trace.streams.tolist()
    writes = trace.writes.tolist()

    def close(end_index: int) -> None:
        nonlocal counts, hits, consumed_before, start
        accesses = end_index - start
        if accesses <= 0:
            return
        windows.append(
            PhaseWindow(
                start_index=start,
                accesses=accesses,
                hits=hits,
                stream_counts=dict(counts),
                rt_consumed=llc.stats.rt_consumed - consumed_before,
            )
        )
        counts = {stream: 0 for stream in ALL_STREAMS}
        hits = 0
        consumed_before = llc.stats.rt_consumed
        start = end_index

    for index in range(len(addresses)):
        outcome = access(addresses[index], streams[index], writes[index])
        counts[Stream(streams[index])] += 1
        if outcome == HIT:
            hits += 1
        if index + 1 - start >= window:
            close(index + 1)
    close(len(addresses))
    return windows


def detect_phase_changes(
    windows: List[PhaseWindow], threshold: float = 0.25
) -> List[int]:
    """Indices of windows whose dominant stream mix shifted sharply.

    A phase change is flagged when some stream's share moves by more
    than ``threshold`` between consecutive windows — the signature of a
    pass boundary (geometry -> post-processing, etc.).
    """
    changes: List[int] = []
    for index in range(1, len(windows)):
        previous, current = windows[index - 1], windows[index]
        for stream in ALL_STREAMS:
            delta = abs(
                current.stream_fraction(stream) - previous.stream_fraction(stream)
            )
            if delta > threshold:
                changes.append(index)
                break
    return changes
