"""Plain-text table rendering for experiment output.

Every experiment produces a :class:`Table` — the same rows/series the
paper's figure or table reports — which renders to aligned ASCII for
the terminal and to CSV for downstream plotting.
"""

from __future__ import annotations

import dataclasses
import io
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


@dataclasses.dataclass
class Table:
    """A titled grid of results."""

    title: str
    headers: List[str]
    rows: List[List[Cell]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self, float_format: str = "{:.3f}") -> str:
        return format_table(self, float_format=float_format)

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(self.headers) + "\n")
        for row in self.rows:
            out.write(",".join(_csv_cell(cell) for cell in row) + "\n")
        return out.getvalue()


def _format_cell(cell: Cell, float_format: str) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def _csv_cell(cell: Cell) -> str:
    if cell is None:
        return ""
    text = str(cell)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def format_table(table: Table, float_format: str = "{:.3f}") -> str:
    """Render a :class:`Table` as aligned monospaced text."""
    grid = [table.headers] + [
        [_format_cell(cell, float_format) for cell in row] for row in table.rows
    ]
    widths = [
        max(len(str(grid_row[col])) for grid_row in grid)
        for col in range(len(table.headers))
    ]
    lines = [table.title, "=" * max(len(table.title), 1)]
    header = "  ".join(
        str(cell).ljust(width) for cell, width in zip(grid[0], widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in grid[1:]:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def mean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None
