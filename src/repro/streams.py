"""Graphics data stream taxonomy.

A 3D rendering pipeline touches several distinct data structures (Section
2.1 of the paper): scene geometry, the hierarchical and regular depth
buffers, the stencil buffer, render targets, texture maps, and the final
displayable color surface.  Every access reaching the LLC is tagged with
the :class:`Stream` of the render cache that missed.

For *policy* purposes the paper collapses these into four classes
(Section 3): Z, texture sampler, render target, and "the rest".  The
displayable color surface is itself a render target, so the DISPLAY
stream maps to the RT class — except under the UCD ("uncached displayable
color") variants where it bypasses the LLC entirely.
"""

from __future__ import annotations

import enum


class Stream(enum.IntEnum):
    """Identity of the render cache that generated an LLC access."""

    VERTEX = 0    #: vertex + vertex-index fetches (input assembler)
    HIZ = 1       #: hierarchical-depth buffer accesses
    Z = 2         #: per-pixel depth buffer accesses
    STENCIL = 3   #: stencil buffer accesses
    RT = 4        #: render-target color reads/writes (blending, fills)
    TEXTURE = 5   #: texture sampler reads
    DISPLAY = 6   #: displayable (front/back buffer) color writes
    OTHER = 7     #: shader code, constants, miscellaneous state

    @property
    def short_name(self) -> str:
        """Compact label used in tables and figures."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    Stream.VERTEX: "VTX",
    Stream.HIZ: "HiZ",
    Stream.Z: "Z",
    Stream.STENCIL: "STC",
    Stream.RT: "RT",
    Stream.TEXTURE: "TEX",
    Stream.DISPLAY: "DISP",
    Stream.OTHER: "OTH",
}


class StreamClass(enum.IntEnum):
    """The four stream classes used by the stream-aware policies."""

    Z = 0
    TEX = 1
    RT = 2
    OTHER = 3

    @property
    def short_name(self) -> str:
        return self.name


#: Mapping from raw stream to the policy-level stream class (Section 3:
#: "We partition the LLC accesses into four streams, namely, Z, texture
#: sampler, render targets, and the rest").  DISPLAY maps to RT because
#: "displayable color is a render target" (Section 5.1).
STREAM_CLASS_OF = {
    Stream.VERTEX: StreamClass.OTHER,
    Stream.HIZ: StreamClass.OTHER,
    Stream.Z: StreamClass.Z,
    Stream.STENCIL: StreamClass.OTHER,
    Stream.RT: StreamClass.RT,
    Stream.TEXTURE: StreamClass.TEX,
    Stream.DISPLAY: StreamClass.RT,
    Stream.OTHER: StreamClass.OTHER,
}

#: Dense lookup table indexed by ``int(stream)`` for hot loops.
STREAM_CLASS_TABLE = tuple(
    int(STREAM_CLASS_OF[Stream(i)]) for i in range(len(Stream))
)

ALL_STREAMS = tuple(Stream)
ALL_STREAM_CLASSES = tuple(StreamClass)


def stream_class(stream: Stream) -> StreamClass:
    """Return the policy stream class for a raw stream."""
    return StreamClass(STREAM_CLASS_TABLE[int(stream)])
