"""Trace containers, I/O, statistics and synthetic generators."""

from repro.trace.record import Access, Trace, TraceBuilder
from repro.trace.columnar import load_columnar, save_columnar
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import TraceStats, compute_trace_stats

__all__ = [
    "Access",
    "Trace",
    "TraceBuilder",
    "load_columnar",
    "save_columnar",
    "load_trace",
    "save_trace",
    "TraceStats",
    "compute_trace_stats",
]
