"""Small synthetic traces for unit tests and micro-benchmarks.

These are *not* the graphics workloads (see :mod:`repro.workloads`); they
are minimal, fully-controlled access patterns used to exercise policies
and the simulator in isolation: cyclic scans, scan+reuse mixes, and a
miniature producer/consumer pattern mimicking render-to-texture.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.streams import Stream
from repro.trace.record import Trace, TraceBuilder


def cyclic_scan(
    num_blocks: int,
    repetitions: int,
    stream: Stream = Stream.OTHER,
    block_bytes: int = 64,
    base_address: int = 0,
) -> Trace:
    """Repeatedly sweep ``num_blocks`` sequential blocks.

    A scan longer than the cache thrashes LRU-like policies while
    scan-resistant policies (SRRIP/DRRIP) retain part of it — the classic
    discriminator test.
    """
    builder = TraceBuilder({"name": f"cyclic_scan({num_blocks}x{repetitions})"})
    addresses = base_address + np.arange(num_blocks, dtype=np.uint64) * np.uint64(
        block_bytes
    )
    for _ in range(repetitions):
        builder.extend(addresses, stream)
    return builder.build()


def scan_with_working_set(
    working_blocks: int,
    scan_blocks: int,
    rounds: int,
    working_stream: Stream = Stream.Z,
    scan_stream: Stream = Stream.TEXTURE,
    block_bytes: int = 64,
) -> Trace:
    """Alternate a small reused working set with a long single-use scan.

    Each round touches the working set once, then a fresh region of the
    scan.  A good policy keeps the working set resident; the scan blocks
    are dead on arrival.
    """
    builder = TraceBuilder(
        {"name": f"scan_with_working_set({working_blocks},{scan_blocks})"}
    )
    working = np.arange(working_blocks, dtype=np.uint64) * np.uint64(block_bytes)
    scan_base = np.uint64((working_blocks + 1024) * block_bytes)
    for round_index in range(rounds):
        builder.extend(working, working_stream)
        offset = scan_base + np.uint64(round_index * scan_blocks * block_bytes)
        scan = offset + np.arange(scan_blocks, dtype=np.uint64) * np.uint64(
            block_bytes
        )
        builder.extend(scan, scan_stream)
    return builder.build()


def producer_consumer(
    num_blocks: int,
    rounds: int,
    consume_fraction: float = 1.0,
    gap_blocks: int = 0,
    rng: Optional[np.random.Generator] = None,
    block_bytes: int = 64,
) -> Trace:
    """Miniature render-to-texture pattern.

    Each round *produces* ``num_blocks`` render-target blocks (writes),
    optionally touches ``gap_blocks`` of unrelated data, then *consumes* a
    fraction of the produced blocks through the texture stream — the
    inter-stream reuse at the heart of the paper.
    """
    rng = rng or np.random.default_rng(0)
    builder = TraceBuilder({"name": f"producer_consumer({num_blocks}x{rounds})"})
    produced = np.arange(num_blocks, dtype=np.uint64) * np.uint64(block_bytes)
    gap_base = np.uint64((num_blocks + 4096) * block_bytes)
    for round_index in range(rounds):
        builder.extend(produced, Stream.RT, is_write=True)
        if gap_blocks:
            offset = gap_base + np.uint64(round_index * gap_blocks * block_bytes)
            gap = offset + np.arange(gap_blocks, dtype=np.uint64) * np.uint64(
                block_bytes
            )
            builder.extend(gap, Stream.OTHER)
        count = int(round(consume_fraction * num_blocks))
        if count:
            chosen = rng.choice(num_blocks, size=count, replace=False)
            chosen.sort()
            builder.extend(produced[chosen], Stream.TEXTURE)
    return builder.build()


def interleaved_streams(
    per_stream_blocks: int,
    rounds: int,
    streams: Sequence[Stream] = (Stream.Z, Stream.RT, Stream.TEXTURE),
    block_bytes: int = 64,
) -> Trace:
    """Round-robin over disjoint regions, one region per stream."""
    builder = TraceBuilder({"name": "interleaved_streams"})
    region_stride = np.uint64((per_stream_blocks + 4096) * block_bytes)
    bases = {
        stream: np.uint64(index) * region_stride
        for index, stream in enumerate(streams)
    }
    offsets = np.arange(per_stream_blocks, dtype=np.uint64) * np.uint64(block_bytes)
    for _ in range(rounds):
        for stream in streams:
            builder.extend(bases[stream] + offsets, stream)
    return builder.build()


def random_trace(
    length: int,
    footprint_blocks: int,
    seed: int = 0,
    write_fraction: float = 0.3,
    block_bytes: int = 64,
) -> Trace:
    """Uniform random accesses — the adversarial baseline for properties.

    Used by hypothesis-style tests: on any trace, Belady's OPT must not
    miss more than any online policy.
    """
    rng = np.random.default_rng(seed)
    addresses = (
        rng.integers(0, footprint_blocks, size=length, dtype=np.uint64)
        * np.uint64(block_bytes)
    )
    streams = rng.integers(0, len(Stream), size=length, dtype=np.uint8)
    writes = rng.random(length) < write_fraction
    return Trace(addresses, streams, writes, {"name": f"random(seed={seed})"})
