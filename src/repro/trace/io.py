"""Trace persistence.

Two formats share this front door, dispatched on the file extension:

* ``.npz`` — compressed archives holding the three packed arrays plus
  a JSON metadata blob; smallest on disk.
* ``.gsct`` — the binary columnar layout of
  :mod:`repro.trace.columnar`; raw aligned arrays loaded zero-copy via
  ``np.memmap``, so repeat loads (the frame-trace cache) skip the
  inflate-and-copy entirely.

Both formats are versioned so that stale cache files from older library
versions are rejected instead of silently misread.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.trace.record import Trace

FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]

#: Extensions the dispatcher understands.
TRACE_EXTENSIONS = (".gsct", ".npz")


def trace_format(path: PathLike) -> str:
    """The format (``"gsct"`` or ``"npz"``) a path dispatches to.

    Raises :class:`TraceError` for any other extension — an unknown
    extension is a caller mistake (CLIs map it to a usage error, exit
    code 2), never something to guess a format for.
    """
    base = os.fspath(path)
    for extension in TRACE_EXTENSIONS:
        if base.endswith(extension):
            return extension.lstrip(".")
    raise TraceError(
        f"unknown trace extension on {base!r}: expected one of "
        f"{', '.join(TRACE_EXTENSIONS)}"
    )


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` (creating parent directories).

    A ``.gsct`` path selects the columnar format, ``.npz`` the
    compressed archive; any other extension raises :class:`TraceError`.
    Either way the write is atomic: the file is serialized into a
    process-unique temporary in the same directory and then renamed
    over ``path``, so concurrent readers (and concurrent writers racing
    on the same cache key) never observe a partially written trace.
    """
    base = os.fspath(path)
    if trace_format(base) == "gsct":
        from repro.trace.columnar import save_columnar

        save_columnar(trace, base)
        return
    directory = os.path.dirname(base)
    if directory:
        os.makedirs(directory, exist_ok=True)
    final = base
    tmp = f"{final}.tmp-{os.getpid()}.npz"
    try:
        np.savez_compressed(
            tmp,
            version=np.int64(FORMAT_VERSION),
            addresses=trace.addresses,
            streams=trace.streams,
            writes=trace.writes,
            meta=np.frombuffer(
                json.dumps(trace.meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
        )
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    ``.gsct`` paths memmap the columns zero-copy, ``.npz`` paths
    inflate the archive; any other extension raises
    :class:`TraceError`.
    """
    if trace_format(path) == "gsct":
        from repro.trace.columnar import load_columnar

        return load_columnar(path)
    try:
        with np.load(path) as archive:
            version = int(archive["version"])
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"trace format version {version} unsupported "
                    f"(expected {FORMAT_VERSION}): {path}"
                )
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
            return Trace(
                archive["addresses"], archive["streams"], archive["writes"], meta
            )
    except (OSError, KeyError, ValueError) as exc:
        raise TraceError(f"cannot load trace from {path}: {exc}") from exc
