"""Trace containers.

A *trace* is the ordered sequence of load/store accesses reaching the LLC
(i.e. render-cache misses plus write-backs of displayable color), exactly
what the paper's offline cache simulator digests.  Traces are stored as
packed numpy arrays — a frame at the default reduced scale holds a few
hundred thousand accesses, so per-record Python objects would be far too
expensive.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping, Optional

import numpy as np

from repro.errors import TraceError
from repro.streams import Stream


@dataclasses.dataclass(frozen=True)
class Access:
    """A single LLC access (used at API edges, not in hot loops)."""

    address: int
    stream: Stream
    is_write: bool = False

    @property
    def block_address(self) -> int:
        """Address of the containing 64 B cache block."""
        return self.address >> 6


class Trace:
    """An immutable, packed sequence of LLC accesses.

    Attributes
    ----------
    addresses:
        ``uint64`` byte addresses.
    streams:
        ``uint8`` values of :class:`repro.streams.Stream`.
    writes:
        ``bool`` store flags.
    meta:
        Free-form metadata (application name, frame id, scale, seed…).
    """

    __slots__ = ("addresses", "streams", "writes", "meta")

    def __init__(
        self,
        addresses: np.ndarray,
        streams: np.ndarray,
        writes: np.ndarray,
        meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        addresses = np.ascontiguousarray(addresses, dtype=np.uint64)
        streams = np.ascontiguousarray(streams, dtype=np.uint8)
        writes = np.ascontiguousarray(writes, dtype=bool)
        if not (len(addresses) == len(streams) == len(writes)):
            raise TraceError(
                "trace arrays have mismatched lengths: "
                f"{len(addresses)}, {len(streams)}, {len(writes)}"
            )
        if len(streams) and streams.max(initial=0) >= len(Stream):
            raise TraceError("trace contains an out-of-range stream id")
        self.addresses = addresses
        self.streams = streams
        self.writes = writes
        self.meta = dict(meta or {})

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[Access]:
        for address, stream, write in zip(
            self.addresses.tolist(), self.streams.tolist(), self.writes.tolist()
        ):
            yield Access(address, Stream(stream), write)

    def __getitem__(self, index: int) -> Access:
        return Access(
            int(self.addresses[index]),
            Stream(int(self.streams[index])),
            bool(self.writes[index]),
        )

    def block_addresses(self, block_bytes: int = 64) -> np.ndarray:
        """Block-aligned addresses for a given block size."""
        shift = int(block_bytes).bit_length() - 1
        return self.addresses >> np.uint64(shift)

    def slice(self, start: int, stop: int) -> "Trace":
        """A contiguous sub-trace (shares memory with the parent)."""
        return Trace(
            self.addresses[start:stop],
            self.streams[start:stop],
            self.writes[start:stop],
            self.meta,
        )

    def concat(self, other: "Trace") -> "Trace":
        """The concatenation of two traces (metadata from ``self``)."""
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.streams, other.streams]),
            np.concatenate([self.writes, other.writes]),
            self.meta,
        )

    def stream_mask(self, stream: Stream) -> np.ndarray:
        return self.streams == np.uint8(int(stream))

    def __repr__(self) -> str:
        name = self.meta.get("name", "anonymous")
        return f"Trace(name={name!r}, accesses={len(self)})"


class TraceBuilder:
    """Incrementally builds a :class:`Trace` with amortized growth."""

    _INITIAL_CAPACITY = 4096

    def __init__(self, meta: Optional[Mapping[str, object]] = None) -> None:
        self._capacity = self._INITIAL_CAPACITY
        self._length = 0
        self._addresses = np.empty(self._capacity, dtype=np.uint64)
        self._streams = np.empty(self._capacity, dtype=np.uint8)
        self._writes = np.empty(self._capacity, dtype=bool)
        self.meta = dict(meta or {})

    def __len__(self) -> int:
        return self._length

    def _grow(self, needed: int) -> None:
        while self._capacity < needed:
            self._capacity *= 2
        for name in ("_addresses", "_streams", "_writes"):
            old = getattr(self, name)
            new = np.empty(self._capacity, dtype=old.dtype)
            new[: self._length] = old[: self._length]
            setattr(self, name, new)

    def append(self, address: int, stream: Stream, is_write: bool = False) -> None:
        if self._length == self._capacity:
            self._grow(self._length + 1)
        self._addresses[self._length] = address
        self._streams[self._length] = int(stream)
        self._writes[self._length] = is_write
        self._length += 1

    def extend(
        self,
        addresses: np.ndarray,
        stream: Stream,
        is_write: bool = False,
    ) -> None:
        """Append a batch of addresses sharing one stream and r/w flag."""
        addresses = np.asarray(addresses, dtype=np.uint64)
        end = self._length + len(addresses)
        if end > self._capacity:
            self._grow(end)
        self._addresses[self._length : end] = addresses
        self._streams[self._length : end] = int(stream)
        self._writes[self._length : end] = is_write
        self._length = end

    def build(self) -> Trace:
        return Trace(
            self._addresses[: self._length].copy(),
            self._streams[: self._length].copy(),
            self._writes[: self._length].copy(),
            self.meta,
        )
