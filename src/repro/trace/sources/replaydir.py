"""Pre-converted ``.gsct`` directories as a :class:`TraceSource`.

``gspc-ingest`` converts a capture into a *replay directory*: one
``.gsct`` columnar trace per frame plus a ``source.json`` manifest
recording where each trace came from and its content digest.
:class:`ReplaySource` serves those traces back — the traces are already
in the zero-copy replay format, so :meth:`cache_token` is ``None`` and
the frame-trace cache is bypassed entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.errors import SourceError
from repro.trace.io import load_trace
from repro.trace.record import Trace
from repro.trace.sources import SourceWorkload
from repro.workloads.apps import FrameSpec

#: Manifest identification.
REPLAY_KIND = "gspc-replay"
REPLAY_VERSION = 1
MANIFEST_NAME = "source.json"


def write_replay_manifest(
    directory: str,
    frames: List[Dict[str, object]],
    origin: Dict[str, object],
    mode: str,
) -> str:
    """Write a replay directory's ``source.json``; returns its path.

    ``frames`` entries need ``workload``, ``frame``, ``file``,
    ``sha256`` and ``accesses`` keys; ``origin`` is the identity of the
    source the traces were converted from.
    """
    manifest = {
        "replay": REPLAY_KIND,
        "version": REPLAY_VERSION,
        "created_by": "gspc-ingest",
        "mode": mode,
        "origin": origin,
        "frames": frames,
    }
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_replay_manifest(directory: str) -> Dict[str, object]:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SourceError(
            f"replay directory {directory} lacks a readable "
            f"{MANIFEST_NAME}: {exc}"
        ) from exc
    except ValueError as exc:
        raise SourceError(f"{path}: malformed JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("replay") != REPLAY_KIND:
        raise SourceError(f"{path}: not a {REPLAY_KIND!r} manifest")
    if manifest.get("version") != REPLAY_VERSION:
        raise SourceError(
            f"{path}: manifest version {manifest.get('version')!r} "
            f"unsupported (expected {REPLAY_VERSION})"
        )
    frames = manifest.get("frames")
    if not isinstance(frames, list) or not frames:
        raise SourceError(f"{path}: manifest lists no frames")
    for entry in frames:
        if not isinstance(entry, dict) or not all(
            key in entry
            for key in ("workload", "frame", "file", "sha256", "accesses")
        ):
            raise SourceError(
                f"{path}: frame entries need workload/frame/file/"
                f"sha256/accesses, got {entry!r}"
            )
    return manifest


class ReplaySource:
    """A directory of ``gspc-ingest``-converted ``.gsct`` traces."""

    def __init__(self, path: str) -> None:
        if not os.path.isdir(path):
            raise SourceError(f"replay directory does not exist: {path}")
        self.path = path
        self.spec = f"replay:{path}"
        self._manifest = load_replay_manifest(path)
        self._entries: Dict[tuple, Dict[str, object]] = {}
        for entry in self._manifest["frames"]:
            key = (str(entry["workload"]), int(entry["frame"]))
            if key in self._entries:
                raise SourceError(
                    f"replay directory {path}: duplicate frame "
                    f"{key[0]}#f{key[1]} in {MANIFEST_NAME}"
                )
            trace_path = os.path.join(path, str(entry["file"]))
            if not os.path.isfile(trace_path):
                raise SourceError(
                    f"replay directory {path}: manifest names missing "
                    f"trace file {entry['file']!r}"
                )
            self._entries[key] = entry
        digest = hashlib.sha256()
        for key in sorted(self._entries):
            entry = self._entries[key]
            digest.update(
                f"{key[0]}#f{key[1]}:{entry['sha256']}\n".encode("utf-8")
            )
        self._digest = digest.hexdigest()

    # -- TraceSource protocol ------------------------------------------

    def identity(self) -> Dict[str, object]:
        return {
            "kind": "replay",
            "path": self.path,
            "frames": len(self._entries),
            "origin": self._manifest.get("origin", {}),
            "sha256": self._digest,
        }

    def cache_token(self) -> Optional[str]:
        return None  # .gsct files are already replay-ready; no caching

    def workloads(self) -> List[SourceWorkload]:
        counts: Dict[str, int] = {}
        for workload, _ in self._entries:
            counts[workload] = counts.get(workload, 0) + 1
        return [
            SourceWorkload(name, count)
            for name, count in sorted(counts.items())
        ]

    def frames(self) -> List[FrameSpec]:
        by_name = {w.name: w for w in self.workloads()}
        return [
            FrameSpec(by_name[workload], frame_index)
            for workload, frame_index in sorted(self._entries)
        ]

    def _entry(self, workload: str, frame_index: int) -> Dict[str, object]:
        try:
            return self._entries[(workload, frame_index)]
        except KeyError:
            known = ", ".join(
                f"{w}#f{i}" for w, i in sorted(self._entries)
            )
            raise SourceError(
                f"replay directory {self.path} has no frame "
                f"{workload}#f{frame_index}; available: {known}"
            ) from None

    def frame_spec(self, workload: str, frame_index: int) -> FrameSpec:
        self._entry(workload, frame_index)
        by_name = {w.name: w for w in self.workloads()}
        return FrameSpec(by_name[workload], frame_index)

    def frame_trace(
        self, workload: str, frame_index: int, scale: float = 1.0
    ) -> Trace:
        entry = self._entry(workload, frame_index)
        return load_trace(os.path.join(self.path, str(entry["file"])))
