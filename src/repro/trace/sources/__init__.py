"""Pluggable trace sources.

Every trace the simulators replay comes from a :class:`TraceSource` — an
object that enumerates *workloads* and *frames* and produces the
per-frame LLC access :class:`~repro.trace.record.Trace` tagged with our
stream taxonomy.  Three sources ship today:

* :class:`~repro.trace.sources.synthetic.SyntheticSource` — the built-in
  renderer behind the twelve Table-1 application profiles (the default;
  what every experiment used before this package existed).
* :class:`~repro.trace.sources.capture.CaptureSource` — ingests
  externally captured API/LLC access logs in the documented JSONL/CSV
  capture schema (see ``docs/traces.md``), mapping foreign stream tags
  onto the taxonomy in strict or lenient mode.
* :class:`~repro.trace.sources.replaydir.ReplaySource` — replays a
  directory of pre-converted ``.gsct`` columnar traces produced by
  ``gspc-ingest``.

Sources are addressed by a *source spec* string — ``"synthetic"``,
``"capture:PATH"`` or ``"replay:DIR"`` — which travels through
:class:`~repro.experiments.common.ExperimentConfig`, the sweep spec's
``source`` axis, and both CLIs' ``--trace-source`` flags.  The frame
trace cache keys on :meth:`TraceSource.cache_token`, a digest of the
source's *content* identity, so two different captures that happen to
share workload and frame names never collide in the cache.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.errors import SourceError
from repro.workloads.apps import FrameSpec

#: The default source spec (the built-in synthetic renderer).
SOURCE_SYNTHETIC = "synthetic"

#: Source-spec scheme prefixes understood by :func:`resolve_source`.
SCHEME_CAPTURE = "capture"
SCHEME_REPLAY = "replay"
KNOWN_SCHEMES = (SCHEME_CAPTURE, SCHEME_REPLAY)


@dataclasses.dataclass(frozen=True)
class SourceWorkload:
    """A workload exposed by a non-synthetic source.

    Duck-type compatible with
    :class:`~repro.workloads.apps.AppProfile` where the rest of the
    code base cares (``abbrev``, ``name``, ``num_frames``), so source
    frames ride in plain :class:`~repro.workloads.apps.FrameSpec`
    containers through the experiment, parallel, and sweep layers.
    """

    name: str
    num_frames: int

    @property
    def abbrev(self) -> str:
        return self.name

    def __post_init__(self) -> None:
        if not self.name:
            raise SourceError("source workload needs a non-empty name")
        if self.num_frames < 1:
            raise SourceError(
                f"workload {self.name!r} needs at least one frame"
            )


@runtime_checkable
class TraceSource(Protocol):
    """What the experiment/sweep layers need from a trace provider."""

    #: The source spec string this instance was resolved from.
    spec: str

    def identity(self) -> Dict[str, object]:
        """Stable, content-addressed identity (for manifests/caching)."""
        ...

    def cache_token(self) -> Optional[str]:
        """Frame-cache key prefix.

        ``""`` keeps the legacy cache layout (synthetic), a non-empty
        token namespaces entries per source content, and ``None``
        disables disk caching entirely (the source's own files are
        already replay-ready).
        """
        ...

    def workloads(self) -> List[SourceWorkload]:
        ...

    def frames(self) -> List[FrameSpec]:
        """Every (workload, frame) pair, in deterministic order."""
        ...

    def frame_spec(self, workload: str, frame_index: int) -> FrameSpec:
        ...

    def frame_trace(self, workload: str, frame_index: int, scale: float):
        """The LLC access trace of one frame (``scale`` is only
        meaningful for generative sources; captured frames ignore it)."""
        ...


def validate_source_spec(spec: str) -> str:
    """Syntax-check a source spec string; returns it unchanged.

    Raises :class:`SourceError` for unknown schemes or empty paths —
    without touching the filesystem, so spec objects (sweep specs,
    serve submissions) can validate eagerly.
    """
    if not isinstance(spec, str) or not spec:
        raise SourceError(f"trace source must be a non-empty string, got {spec!r}")
    if spec == SOURCE_SYNTHETIC:
        return spec
    scheme, sep, path = spec.partition(":")
    if not sep or scheme not in KNOWN_SCHEMES:
        raise SourceError(
            f"unknown trace source {spec!r}; expected {SOURCE_SYNTHETIC!r}, "
            f"'capture:PATH' or 'replay:DIR'"
        )
    if not path:
        raise SourceError(f"trace source {spec!r} is missing its path")
    return spec


#: Resolved sources, memoised per spec string.  Capture/replay sources
#: fingerprint their files at construction, so repeat resolutions (one
#: per frame_trace call in the worst case) must not re-hash everything.
_RESOLVED: Dict[str, "TraceSource"] = {}


def resolve_source(spec: str) -> "TraceSource":
    """Resolve a source spec string to a (memoised) :class:`TraceSource`."""
    validate_source_spec(spec)
    if spec in _RESOLVED:
        return _RESOLVED[spec]
    if spec == SOURCE_SYNTHETIC:
        from repro.trace.sources.synthetic import SyntheticSource

        source: TraceSource = SyntheticSource()
    else:
        scheme, _, path = spec.partition(":")
        if scheme == SCHEME_CAPTURE:
            from repro.trace.sources.capture import CaptureSource

            source = CaptureSource(path)
        else:
            from repro.trace.sources.replaydir import ReplaySource

            source = ReplaySource(path)
    _RESOLVED[spec] = source
    return source


def clear_resolved_sources() -> None:
    """Drop the memoised sources (tests; captures rewritten in place)."""
    _RESOLVED.clear()


__all__ = [
    "KNOWN_SCHEMES",
    "SOURCE_SYNTHETIC",
    "SourceWorkload",
    "TraceSource",
    "clear_resolved_sources",
    "resolve_source",
    "validate_source_spec",
]
