"""The Table 1 / Figure 4 characterization envelope.

The paper characterizes 3D rendering frames (Table 1, Figure 4) with a
distinctive LLC stream mix: render-target traffic dominates (~40% on
average), the texture sampler follows (~34%), depth contributes at least
a tenth, and geometry plus miscellaneous state make up the rest.  A
capture that claims to be a rendering workload but whose mix falls far
outside those bands was probably mislabeled, captured at the wrong
observation point (e.g. L1 misses instead of LLC accesses), or tagged
with a broken stream mapping.

``gspc-ingest`` checks every converted frame against this envelope.  The
bounds are deliberately generous — per-application mixes in Figure 4
vary widely around the averages — so the gate catches category errors,
not ordinary workload diversity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.streams import (
    ALL_STREAMS,
    STREAM_CLASS_OF,
    StreamClass,
)
from repro.trace.record import Trace
from repro.trace.stats import compute_trace_stats

#: Per-stream-class access-share bounds (inclusive), from the Figure 4
#: averages widened to cover the per-application spread: RT ~40%
#: (displayable color included), TEX ~34%, Z ~10-17% with HiZ folded
#: into OTHER, geometry + state ~13%.
CLASS_SHARE_BOUNDS: Dict[StreamClass, tuple] = {
    StreamClass.Z: (0.02, 0.30),
    StreamClass.TEX: (0.15, 0.60),
    StreamClass.RT: (0.18, 0.65),
    StreamClass.OTHER: (0.01, 0.40),
}

#: Rendering traffic is read-heavy overall; a capture that is almost all
#: stores was not taken at the LLC ingress.
WRITE_FRACTION_MAX = 0.75

#: Below this the mix is statistically meaningless and the frame cannot
#: have covered a real render pass.
MIN_ACCESSES = 256


def characterize_capture(trace: Trace) -> Dict[str, object]:
    """JSON-ready stream-mix + reuse characterization of one frame.

    This is what the ``ingest`` manifest embeds per frame and what
    :func:`check_envelope` consumes: per-stream and per-class access
    shares, block footprints, and block-level reuse fractions
    (``1 - distinct_blocks / accesses`` — the fraction of accesses that
    revisit an already-touched 64 B block).
    """
    stats = compute_trace_stats(trace)
    accesses = stats.accesses

    def reuse(count: int, footprint: int) -> float:
        return 1.0 - footprint / count if count else 0.0

    streams: Dict[str, Dict[str, object]] = {}
    class_counts: Dict[StreamClass, int] = {cls: 0 for cls in StreamClass}
    for stream in ALL_STREAMS:
        count = stats.stream_counts[stream]
        footprint = stats.stream_footprint_blocks[stream]
        class_counts[STREAM_CLASS_OF[stream]] += count
        streams[stream.short_name] = {
            "count": count,
            "share": count / accesses if accesses else 0.0,
            "footprint_blocks": footprint,
            "reuse_fraction": reuse(count, footprint),
        }
    return {
        "accesses": accesses,
        "writes": stats.writes,
        "write_fraction": stats.writes / accesses if accesses else 0.0,
        "footprint_blocks": stats.footprint_blocks,
        "footprint_bytes": stats.footprint_bytes,
        "reuse_fraction": reuse(accesses, stats.footprint_blocks),
        "streams": streams,
        "classes": {
            cls.short_name: class_counts[cls] / accesses if accesses else 0.0
            for cls in StreamClass
        },
    }


def check_envelope(characterization: Dict[str, object]) -> List[str]:
    """Violations of the Table 1 envelope; empty means conformant.

    Accepts the dict produced by :func:`characterize_capture` (or the
    same structure read back from an ``ingest`` manifest).
    """
    violations: List[str] = []
    accesses = int(characterization.get("accesses", 0))
    if accesses < MIN_ACCESSES:
        violations.append(
            f"only {accesses} accesses (envelope needs >= {MIN_ACCESSES} "
            "to characterize a render pass)"
        )
        return violations
    classes = characterization.get("classes", {})
    for cls, (low, high) in CLASS_SHARE_BOUNDS.items():
        share = float(classes.get(cls.short_name, 0.0))
        if not low <= share <= high:
            violations.append(
                f"{cls.short_name} access share {share:.3f} outside "
                f"Table 1 envelope [{low:g}, {high:g}]"
            )
    write_fraction = float(characterization.get("write_fraction", 0.0))
    if write_fraction > WRITE_FRACTION_MAX:
        violations.append(
            f"write fraction {write_fraction:.3f} exceeds "
            f"{WRITE_FRACTION_MAX:g} (capture not taken at LLC ingress?)"
        )
    return violations
