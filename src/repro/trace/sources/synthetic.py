"""The built-in synthetic renderer as a :class:`TraceSource`.

This is the source every experiment used implicitly before the source
abstraction existed: the twelve Table-1 application profiles rendered by
:func:`repro.workloads.framegen.generate_frame_trace`.  Keeping its
:meth:`cache_token` empty preserves the pre-existing frame-trace cache
layout (``<app>_f<idx>_s<scale>.gsct``), so caches warmed by older
releases keep hitting.

Beyond Table 1, the source also *resolves* (but does not enumerate) the
extended workload families of :mod:`repro.workloads.families` — frame
coherence sequences, graph/big-data streams, and GPGPU kernel graphs.
They answer to :meth:`frame_spec`/:meth:`frame_trace` by name, so the
frame-trace cache, both engines, `gspc-sweep`, and `gspc-serve` can all
target e.g. ``--apps coh-hi,graph-bfs``; they are deliberately absent
from :meth:`workloads`/:meth:`frames` so the paper's published 12-app ×
52-frame experiment set — and every golden result pinned to it — stays
exactly as it was.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SourceError
from repro.trace.record import Trace
from repro.trace.sources import SOURCE_SYNTHETIC, SourceWorkload
from repro.workloads.apps import ALL_APPS, FrameSpec, app_by_name


class SyntheticSource:
    """Frames generated on demand by the synthetic renderer."""

    spec = SOURCE_SYNTHETIC

    def identity(self) -> Dict[str, object]:
        return {"kind": SOURCE_SYNTHETIC}

    def cache_token(self) -> str:
        return ""  # legacy cache layout: no per-source namespace

    def workloads(self) -> List[SourceWorkload]:
        return [
            SourceWorkload(app.abbrev, app.num_frames) for app in ALL_APPS
        ]

    def frames(self) -> List[FrameSpec]:
        return [
            FrameSpec(app, index)
            for app in ALL_APPS
            for index in range(app.num_frames)
        ]

    def _workload(self, workload: str):
        """A Table-1 app or an extended-family preset, by name."""
        from repro.workloads.families import family_by_name, is_family_workload

        if is_family_workload(workload):
            return family_by_name(workload)
        try:
            return app_by_name(workload)
        except Exception as exc:
            raise SourceError(str(exc)) from exc

    def frame_spec(self, workload: str, frame_index: int) -> FrameSpec:
        return FrameSpec(self._workload(workload), frame_index)

    def frame_trace(
        self, workload: str, frame_index: int, scale: float
    ) -> Trace:
        from repro.workloads.framegen import generate_frame_trace

        resolved = self._workload(workload)
        if hasattr(resolved, "generate"):
            return resolved.generate(frame_index, scale)
        return generate_frame_trace(resolved, frame_index, scale=scale)
