"""gspc-ingest — convert captures into replayable ``.gsct`` traces.

Reads one capture file (or a directory of them) in the documented
capture schema (``docs/traces.md``), maps foreign stream tags onto the
stream taxonomy, converts every frame into a ``.gsct`` columnar trace
inside a *replay directory* (consumable via ``--trace-source
replay:DIR``), and validates each frame's stream mix against the
paper's Table 1 characterization envelope.

The conversion always emits a characterization manifest (obs kind
``ingest``) as ``ingest.json`` in the replay directory — per-frame
stream shares, reuse statistics, and the envelope verdict — plus the
``source.json`` replay manifest.

Exit codes follow the gspc-* contract: 0 success, 1 unreadable or
malformed capture, 2 usage error, 3 conversion succeeded but at least
one frame violates the Table 1 envelope (artifacts are still written).

Examples::

    gspc-ingest --capture frame.jsonl.gz --out traces/
    gspc-ingest --capture capdir/ --out traces/ --lenient
    gspc-ingest --capture frame.csv --out traces/ --no-check --metrics-out out/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.cli import EXIT_OK, EXIT_PARTIAL, EXIT_RUNTIME, EXIT_USAGE, \
    ensure_directory
from repro.errors import ReproError
from repro.obs.manifest import ingest_manifest, write_manifest
from repro.trace.io import save_trace
from repro.trace.sources.capture import (
    MODE_LENIENT,
    MODE_STRICT,
    CaptureSource,
    _file_sha256,
    read_capture,
)
from repro.trace.sources.envelope import characterize_capture, check_envelope
from repro.trace.sources.replaydir import write_replay_manifest

#: Stable name of the characterization manifest inside the replay dir.
INGEST_MANIFEST_NAME = "ingest.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-ingest",
        description="Convert captured access logs into replayable .gsct "
        "traces and check their stream mix against the Table 1 envelope.",
    )
    parser.add_argument(
        "--capture",
        required=True,
        help="capture file (.jsonl/.csv, optionally .gz) or a directory "
        "of capture files",
    )
    parser.add_argument(
        "--out",
        required=True,
        help="replay directory to write .gsct traces, source.json and "
        "ingest.json into",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="map unknown stream tags to OTHER (counted) instead of "
        "failing, and tolerate a missing declared access count",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the Table 1 envelope conformance check (conversion "
        "artifacts are identical; only the exit code changes)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        help="also write the ingest manifest into DIR under its "
        "canonical manifest filename",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    started = time.perf_counter()
    for directory, option in (
        (args.out, "--out"),
        (args.metrics_out, "--metrics-out"),
    ):
        if directory:
            problem = ensure_directory(directory, option)
            if problem:
                print(f"error: {problem}", file=sys.stderr)
                return EXIT_USAGE
    mode = MODE_LENIENT if args.lenient else MODE_STRICT

    try:
        source = CaptureSource(args.capture, mode)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME

    frames = []
    replay_entries = []
    total_accesses = 0
    total_unknown = 0
    violating_frames = 0
    for capture_frame in source.capture_frames():
        try:
            trace, stats = read_capture(capture_frame.path, mode)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_RUNTIME
        trace.meta["capture_sha256"] = capture_frame.sha256
        filename = (
            f"{capture_frame.workload}_f{capture_frame.frame_index}.gsct"
        )
        trace_path = os.path.join(args.out, filename)
        try:
            save_trace(trace, trace_path)
        except (ReproError, OSError) as exc:
            print(f"error: cannot write {trace_path}: {exc}", file=sys.stderr)
            return EXIT_RUNTIME
        characterization = characterize_capture(trace)
        violations = [] if args.no_check else check_envelope(characterization)
        if violations:
            violating_frames += 1
        total_accesses += stats.accesses
        total_unknown += stats.unknown_count
        digest = _file_sha256(trace_path)
        replay_entries.append(
            {
                "workload": capture_frame.workload,
                "frame": capture_frame.frame_index,
                "file": filename,
                "sha256": digest,
                "accesses": stats.accesses,
                "capture_file": os.path.basename(capture_frame.path),
                "capture_sha256": capture_frame.sha256,
            }
        )
        frames.append(
            {
                "workload": capture_frame.workload,
                "frame": capture_frame.frame_index,
                "file": filename,
                "sha256": digest,
                "accesses": stats.accesses,
                "unknown_tags": dict(sorted(stats.unknown_tags.items())),
                "characterization": characterization,
                "conformant": not violations,
                "violations": violations,
            }
        )
        classes = characterization["classes"]
        mix = " ".join(
            f"{name}={classes[name]:.1%}" for name in ("Z", "TEX", "RT", "OTHER")
        )
        verdict = "SKIPPED" if args.no_check else (
            "FAIL" if violations else "ok"
        )
        print(
            f"{capture_frame.name}: {stats.accesses} accesses  {mix}  "
            f"reuse={characterization['reuse_fraction']:.1%}  "
            f"envelope={verdict}"
        )
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)

    write_replay_manifest(args.out, replay_entries, source.identity(), mode)
    manifest = ingest_manifest(
        config={"capture": args.capture, "out": args.out, "mode": mode,
                "check": not args.no_check},
        source=source.identity(),
        metrics={
            "frames": len(frames),
            "accesses": total_accesses,
            "unknown_tags": total_unknown,
            "envelope_violations": violating_frames,
        },
        frames=frames,
        wall_seconds=time.perf_counter() - started,
    )
    write_manifest(manifest, args.out, INGEST_MANIFEST_NAME)
    if args.metrics_out:
        write_manifest(manifest, args.metrics_out)
    print(
        f"converted {len(frames)} frame(s), {total_accesses} accesses "
        f"-> {args.out} (replay with --trace-source replay:{args.out})"
    )
    if violating_frames:
        print(
            f"error: {violating_frames} frame(s) outside the Table 1 "
            "characterization envelope",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
