"""Externally captured access logs as a :class:`TraceSource`.

The *capture schema* (documented in ``docs/traces.md``) is the repo's
front door for traces we did not generate: an apitrace-style dump of the
LLC access stream of one frame, one file per frame, in either of two
encodings (both optionally gzip-compressed, extension ``.gz``):

* **JSONL** (``.jsonl``) — line 1 is a header object::

      {"capture": "gspc-capture", "version": 1,
       "workload": "name", "frame": 0, "accesses": N}

  followed by one record per access::

      {"addr": 123456, "stream": "TEX", "write": false}

  ``addr`` may be an integer or a ``"0x..."`` hex string; ``write``
  defaults to ``false``.  The declared ``accesses`` count lets
  ingestion reject captures truncated at a line boundary — the same
  torn-file discipline the ``.gsct`` reader applies.

* **CSV** (``.csv``) — a ``addr,stream,write`` header row followed by
  one row per access.  CSV carries no declared count, so line-boundary
  truncation is only detectable in JSONL.

Stream tags map onto :class:`repro.streams.Stream` through a generous
alias table (``"color"`` → RT, ``"depth"`` → Z, ``"sampler"`` → TEX,
…).  In **strict** mode an unknown tag aborts ingestion; in **lenient**
mode it maps to ``OTHER`` and is counted, so the characterization
manifest shows exactly how much of the capture was unclassifiable.

A :class:`CaptureSource` fingerprints every capture file at
construction; the digest feeds :meth:`cache_token`, so converted traces
from different captures never collide in the frame-trace cache even
when workload and frame names do.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
import re
from typing import Dict, IO, List, Optional, Tuple

import numpy as np

from repro.errors import SourceError
from repro.streams import Stream
from repro.trace.record import Trace, TraceBuilder
from repro.trace.sources import SourceWorkload
from repro.workloads.apps import FrameSpec

#: Schema identification.
CAPTURE_KIND = "gspc-capture"
CAPTURE_VERSION = 1

#: Ingestion modes.
MODE_STRICT = "strict"
MODE_LENIENT = "lenient"
MODES = (MODE_STRICT, MODE_LENIENT)

#: Recognized capture filename suffixes, longest first.
CAPTURE_SUFFIXES = (".jsonl.gz", ".csv.gz", ".jsonl", ".csv")

#: ``<workload>_f<idx>`` filename convention (fallback identity when a
#: CSV capture carries no header metadata).
_FRAME_NAME_RE = re.compile(r"^(?P<workload>.+)_f(?P<frame>\d+)$")

#: Foreign stream tag -> taxonomy stream.  Keys are lower-case; lookup
#: strips non-alphanumerics, so ``"render-target"`` and ``"RenderTarget"``
#: both land on RT.  Numeric tags ``"0"``..``"7"`` are accepted as raw
#: :class:`Stream` values.
STREAM_TAGS: Dict[str, Stream] = {
    # canonical short and enum names
    "vtx": Stream.VERTEX, "vertex": Stream.VERTEX,
    "hiz": Stream.HIZ, "hierarchicalz": Stream.HIZ,
    "z": Stream.Z, "depth": Stream.Z, "zbuffer": Stream.Z,
    "stc": Stream.STENCIL, "stencil": Stream.STENCIL,
    "rt": Stream.RT, "rendertarget": Stream.RT, "color": Stream.RT,
    "colorbuffer": Stream.RT,
    "tex": Stream.TEXTURE, "texture": Stream.TEXTURE,
    "sampler": Stream.TEXTURE, "texel": Stream.TEXTURE,
    "disp": Stream.DISPLAY, "display": Stream.DISPLAY,
    "present": Stream.DISPLAY, "scanout": Stream.DISPLAY,
    "framebuffer": Stream.DISPLAY,
    "oth": Stream.OTHER, "other": Stream.OTHER, "misc": Stream.OTHER,
    "const": Stream.OTHER, "constant": Stream.OTHER,
    "shader": Stream.OTHER, "code": Stream.OTHER, "state": Stream.OTHER,
    # vertex-index fetches share the input-assembler stream
    "index": Stream.VERTEX, "ib": Stream.VERTEX, "vb": Stream.VERTEX,
}

_TAG_CLEAN_RE = re.compile(r"[^a-z0-9]+")


def canonical_tag(tag: str) -> str:
    return _TAG_CLEAN_RE.sub("", tag.strip().lower())


def map_stream_tag(tag: object) -> Optional[Stream]:
    """The taxonomy stream for a capture tag, or ``None`` if unknown."""
    if isinstance(tag, bool):
        return None
    if isinstance(tag, int):
        return Stream(tag) if 0 <= tag < len(Stream) else None
    if not isinstance(tag, str):
        return None
    cleaned = canonical_tag(tag)
    if cleaned in STREAM_TAGS:
        return STREAM_TAGS[cleaned]
    if cleaned.isdigit() and int(cleaned) < len(Stream):
        return Stream(int(cleaned))
    return None


@dataclasses.dataclass
class IngestStats:
    """What ingestion learned while converting one capture frame."""

    accesses: int = 0
    writes: int = 0
    #: Lenient-mode unknown tags, tag -> occurrences.
    unknown_tags: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def unknown_count(self) -> int:
        return sum(self.unknown_tags.values())


@dataclasses.dataclass(frozen=True)
class CaptureFrame:
    """One capture file: identity plus its content fingerprint."""

    path: str
    workload: str
    frame_index: int
    sha256: str

    @property
    def name(self) -> str:
        return f"{self.workload}#f{self.frame_index}"


# -- low-level file access -----------------------------------------------------

def _open_capture(path: str) -> IO[str]:
    try:
        if path.endswith(".gz"):
            return gzip.open(path, "rt", encoding="utf-8")
        return open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise SourceError(f"cannot open capture {path}: {exc}") from exc


def _strip_suffix(filename: str) -> Optional[str]:
    for suffix in CAPTURE_SUFFIXES:
        if filename.endswith(suffix):
            return filename[: -len(suffix)]
    return None


def is_capture_filename(filename: str) -> bool:
    return _strip_suffix(filename) is not None


def _is_jsonl(path: str) -> bool:
    return path.endswith(".jsonl") or path.endswith(".jsonl.gz")


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as exc:
        raise SourceError(f"cannot read capture {path}: {exc}") from exc
    return digest.hexdigest()


def _identity_from_filename(path: str) -> Tuple[str, int]:
    stem = _strip_suffix(os.path.basename(path))
    if stem is None:
        raise SourceError(
            f"not a capture file (expected one of {CAPTURE_SUFFIXES}): {path}"
        )
    match = _FRAME_NAME_RE.match(stem)
    if match:
        return match.group("workload"), int(match.group("frame"))
    return stem, 0


def _parse_header(line: str, path: str) -> Dict[str, object]:
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise SourceError(
            f"capture {path}: first line is not a JSON header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("capture") != CAPTURE_KIND:
        raise SourceError(
            f"capture {path}: missing {CAPTURE_KIND!r} header line"
        )
    version = header.get("version")
    if version != CAPTURE_VERSION:
        raise SourceError(
            f"capture {path}: schema version {version!r} unsupported "
            f"(expected {CAPTURE_VERSION})"
        )
    return header


def capture_identity(path: str) -> Tuple[str, int]:
    """(workload, frame) of a capture file, header over filename."""
    workload, frame_index = _identity_from_filename(path)
    if _is_jsonl(path):
        try:
            with _open_capture(path) as handle:
                header = _parse_header(handle.readline(), path)
        except (OSError, EOFError, UnicodeDecodeError) as exc:
            raise SourceError(f"capture {path}: unreadable: {exc}") from exc
        workload = str(header.get("workload", workload))
        frame_value = header.get("frame", frame_index)
        if not isinstance(frame_value, int) or isinstance(frame_value, bool) \
                or frame_value < 0:
            raise SourceError(
                f"capture {path}: header frame must be a non-negative "
                f"integer, got {frame_value!r}"
            )
        frame_index = frame_value
    return workload, frame_index


# -- record parsing ------------------------------------------------------------

def _parse_addr(value: object, where: str) -> int:
    if isinstance(value, bool):
        raise SourceError(f"{where}: addr must be an integer, got {value!r}")
    if isinstance(value, str):
        try:
            value = int(value, 16) if value.lower().startswith("0x") \
                else int(value)
        except ValueError:
            raise SourceError(f"{where}: unparsable addr {value!r}") from None
    if not isinstance(value, int) or value < 0 or value >= 1 << 64:
        raise SourceError(
            f"{where}: addr must be an unsigned 64-bit integer, got {value!r}"
        )
    return value


_WRITE_FLAGS = {
    "1": True, "true": True, "w": True, "write": True,
    "0": False, "false": False, "r": False, "read": False, "": False,
}


def _parse_write(value: object, where: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str) and value.strip().lower() in _WRITE_FLAGS:
        return _WRITE_FLAGS[value.strip().lower()]
    raise SourceError(f"{where}: unparsable write flag {value!r}")


def _resolve_stream(
    tag: object, mode: str, stats: IngestStats, where: str
) -> Stream:
    stream = map_stream_tag(tag)
    if stream is not None:
        return stream
    if mode == MODE_STRICT:
        known = sorted(set(STREAM_TAGS))
        raise SourceError(
            f"{where}: unknown stream tag {tag!r} (strict mode); "
            f"known tags: {', '.join(known)}"
        )
    label = tag if isinstance(tag, str) else repr(tag)
    stats.unknown_tags[label] = stats.unknown_tags.get(label, 0) + 1
    return Stream.OTHER


def read_capture(
    path: str, mode: str = MODE_STRICT
) -> Tuple[Trace, IngestStats]:
    """Parse one capture file into a taxonomy-tagged :class:`Trace`.

    Raises :class:`SourceError` for anything malformed: bad header,
    unparsable records, a record count that contradicts the header's
    declared ``accesses`` (truncation), an empty capture, or — in
    strict mode — an unknown stream tag.
    """
    if mode not in MODES:
        raise SourceError(f"unknown ingest mode {mode!r}; expected {MODES}")
    workload, frame_index = capture_identity(path)
    stats = IngestStats()
    builder = TraceBuilder()
    declared: Optional[int] = None
    with _open_capture(path) as handle:
        try:
            if _is_jsonl(path):
                header = _parse_header(handle.readline(), path)
                if "accesses" in header:
                    declared = header["accesses"]
                    if not isinstance(declared, int) \
                            or isinstance(declared, bool) or declared < 0:
                        raise SourceError(
                            f"capture {path}: declared accesses must be a "
                            f"non-negative integer, got {declared!r}"
                        )
                elif mode == MODE_STRICT:
                    raise SourceError(
                        f"capture {path}: header lacks the declared "
                        "'accesses' count (strict mode)"
                    )
                for lineno, line in enumerate(handle, start=2):
                    if not line.strip():
                        continue
                    where = f"capture {path}:{lineno}"
                    try:
                        record = json.loads(line)
                    except ValueError as exc:
                        raise SourceError(
                            f"{where}: unparsable record: {exc}"
                        ) from None
                    if not isinstance(record, dict) or "addr" not in record \
                            or "stream" not in record:
                        raise SourceError(
                            f"{where}: record needs 'addr' and 'stream'"
                        )
                    builder.append(
                        _parse_addr(record["addr"], where),
                        _resolve_stream(record["stream"], mode, stats, where),
                        _parse_write(record.get("write", False), where),
                    )
            else:
                first = handle.readline()
                columns = [c.strip().lower() for c in first.strip().split(",")]
                if columns[:2] != ["addr", "stream"]:
                    raise SourceError(
                        f"capture {path}: CSV header must start with "
                        f"'addr,stream', got {first.strip()!r}"
                    )
                for lineno, line in enumerate(handle, start=2):
                    if not line.strip():
                        continue
                    where = f"capture {path}:{lineno}"
                    cells = line.strip().split(",")
                    if len(cells) < 2:
                        raise SourceError(f"{where}: too few columns")
                    builder.append(
                        _parse_addr(cells[0].strip(), where),
                        _resolve_stream(cells[1].strip(), mode, stats, where),
                        _parse_write(
                            cells[2].strip() if len(cells) > 2 else "", where
                        ),
                    )
        except (OSError, EOFError, UnicodeDecodeError) as exc:
            # gzip raises EOFError on a truncated archive mid-iteration.
            raise SourceError(f"capture {path}: unreadable: {exc}") from exc
    if declared is not None and declared != len(builder):
        raise SourceError(
            f"capture {path}: header declares {declared} accesses but the "
            f"file holds {len(builder)} (truncated or edited capture)"
        )
    if len(builder) == 0:
        raise SourceError(f"capture {path}: contains no accesses")
    builder.meta.update(
        {
            "name": f"{workload}#f{frame_index}",
            "app": workload,
            "abbrev": workload,
            "workload": workload,
            "frame": frame_index,
            "source": "capture",
            "capture_file": os.path.basename(path),
            "ingest_mode": mode,
        }
    )
    if stats.unknown_tags:
        builder.meta["unknown_stream_tags"] = dict(
            sorted(stats.unknown_tags.items())
        )
    trace = builder.build()
    stats.accesses = len(trace)
    stats.writes = int(trace.writes.sum())
    return trace, stats


# -- capture export (fixtures, round-trip tests) -------------------------------

def export_capture(
    trace: Trace,
    path: str,
    workload: Optional[str] = None,
    frame_index: Optional[int] = None,
) -> None:
    """Write ``trace`` out in the capture schema (format by extension).

    The inverse of :func:`read_capture` — used to build capture
    fixtures from synthetic frames and by round-trip tests.
    """
    if not is_capture_filename(path):
        raise SourceError(
            f"capture path needs one of {CAPTURE_SUFFIXES}: {path}"
        )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    workload = workload or str(
        trace.meta.get("workload", trace.meta.get("abbrev", "capture"))
    )
    if frame_index is None:
        frame = trace.meta.get("frame", 0)
        frame_index = frame if isinstance(frame, int) else 0
    opener = gzip.open if path.endswith(".gz") else open
    addresses = trace.addresses.tolist()
    streams = trace.streams.tolist()
    writes = trace.writes.tolist()
    with opener(path, "wt", encoding="utf-8", newline="\n") as handle:
        if _is_jsonl(path):
            handle.write(
                json.dumps(
                    {
                        "capture": CAPTURE_KIND,
                        "version": CAPTURE_VERSION,
                        "workload": workload,
                        "frame": frame_index,
                        "accesses": len(trace),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for address, stream, write in zip(addresses, streams, writes):
                handle.write(
                    '{"addr": %d, "stream": "%s", "write": %s}\n'
                    % (
                        address,
                        Stream(stream).short_name,
                        "true" if write else "false",
                    )
                )
        else:
            handle.write("addr,stream,write\n")
            for address, stream, write in zip(addresses, streams, writes):
                handle.write(
                    f"{address},{Stream(stream).short_name},"
                    f"{1 if write else 0}\n"
                )


# -- the source ----------------------------------------------------------------

class CaptureSource:
    """Capture files (one file or a directory of them) as a source."""

    def __init__(self, path: str, mode: str = MODE_STRICT) -> None:
        if mode not in MODES:
            raise SourceError(f"unknown ingest mode {mode!r}; expected {MODES}")
        self.path = path
        self.mode = mode
        self.spec = f"capture:{path}"
        if os.path.isdir(path):
            filenames = sorted(
                name for name in os.listdir(path) if is_capture_filename(name)
            )
            if not filenames:
                raise SourceError(
                    f"capture directory {path} holds no capture files "
                    f"({'/'.join(CAPTURE_SUFFIXES)})"
                )
            paths = [os.path.join(path, name) for name in filenames]
        elif os.path.isfile(path):
            paths = [path]
        else:
            raise SourceError(f"capture path does not exist: {path}")
        self._frames: List[CaptureFrame] = []
        seen: Dict[Tuple[str, int], str] = {}
        for file_path in paths:
            workload, frame_index = capture_identity(file_path)
            key = (workload, frame_index)
            if key in seen:
                raise SourceError(
                    f"capture frame {workload}#f{frame_index} defined by "
                    f"both {seen[key]} and {file_path}"
                )
            seen[key] = file_path
            self._frames.append(
                CaptureFrame(
                    file_path, workload, frame_index, _file_sha256(file_path)
                )
            )
        self._frames.sort(key=lambda f: (f.workload, f.frame_index))
        digest = hashlib.sha256()
        for frame in self._frames:
            digest.update(
                f"{frame.workload}#f{frame.frame_index}:{frame.sha256}\n"
                .encode("utf-8")
            )
        digest.update(self.mode.encode("utf-8"))
        self._digest = digest.hexdigest()

    # -- TraceSource protocol ------------------------------------------

    def identity(self) -> Dict[str, object]:
        return {
            "kind": "capture",
            "path": self.path,
            "mode": self.mode,
            "frames": len(self._frames),
            "sha256": self._digest,
        }

    def cache_token(self) -> str:
        return f"cap{self._digest[:12]}"

    def capture_frames(self) -> List[CaptureFrame]:
        return list(self._frames)

    def workloads(self) -> List[SourceWorkload]:
        counts: Dict[str, int] = {}
        for frame in self._frames:
            counts[frame.workload] = counts.get(frame.workload, 0) + 1
        return [
            SourceWorkload(name, count)
            for name, count in sorted(counts.items())
        ]

    def frames(self) -> List[FrameSpec]:
        by_name = {w.name: w for w in self.workloads()}
        return [
            FrameSpec(by_name[frame.workload], frame.frame_index)
            for frame in self._frames
        ]

    def _find(self, workload: str, frame_index: int) -> CaptureFrame:
        for frame in self._frames:
            if frame.workload == workload and frame.frame_index == frame_index:
                return frame
        known = ", ".join(f.name for f in self._frames)
        raise SourceError(
            f"capture {self.path} has no frame {workload}#f{frame_index}; "
            f"captured frames: {known}"
        )

    def frame_spec(self, workload: str, frame_index: int) -> FrameSpec:
        self._find(workload, frame_index)
        by_name = {w.name: w for w in self.workloads()}
        return FrameSpec(by_name[workload], frame_index)

    def frame_trace(
        self, workload: str, frame_index: int, scale: float = 1.0
    ) -> Trace:
        frame = self._find(workload, frame_index)
        trace, _ = read_capture(frame.path, self.mode)
        trace.meta["capture_sha256"] = frame.sha256
        return trace
