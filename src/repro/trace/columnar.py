"""Binary columnar trace format (``.gsct``): zero-copy load via memmap.

The compressed ``.npz`` archives in :mod:`repro.trace.io` pay a full
inflate-and-copy on every load, which dominates setup time once the
replay loop itself is fast.  The ``.gsct`` layout stores the three trace
columns as raw little-endian arrays at 64-byte-aligned offsets behind a
tiny JSON header, so :func:`load_columnar` can hand ``np.memmap`` views
straight to :class:`~repro.trace.record.Trace` — the kernel pages the
file in lazily and nothing is decompressed or copied.  Both engines
consume the same views: ``Trace`` keeps contiguous same-dtype arrays as
is, so the fast engine's vectorized decode and the reference engine's
replay read one shared format.

File layout::

    bytes 0..3    magic  b"GSCT"
    bytes 4..7    format version   (uint32, little-endian)
    bytes 8..11   JSON header size (uint32, little-endian)
    bytes 12..    JSON header: {"count", "meta", "columns": {name:
                  {"dtype", "offset"}}} — offsets are absolute and
                  64-byte aligned
    ...           raw column payloads, in header order

Writes are atomic (process-unique temp file + ``os.replace``), matching
the ``.npz`` writer, so concurrent cache fills never expose a torn file.
"""

from __future__ import annotations

import json
import os
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.trace.record import Trace

MAGIC = b"GSCT"
FORMAT_VERSION = 1
ALIGNMENT = 64

PathLike = Union[str, "os.PathLike[str]"]

#: Column name -> stored dtype.  ``writes`` travels as ``uint8`` —
#: portable, and reinterpreted as ``bool`` on load without a copy.
_COLUMNS = (("addresses", "<u8"), ("streams", "u1"), ("writes", "u1"))


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def save_columnar(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the ``.gsct`` columnar layout."""
    base = os.fspath(path)
    directory = os.path.dirname(base)
    if directory:
        os.makedirs(directory, exist_ok=True)

    count = len(trace)
    arrays = {
        "addresses": np.ascontiguousarray(trace.addresses, dtype="<u8"),
        "streams": np.ascontiguousarray(trace.streams, dtype="u1"),
        "writes": np.ascontiguousarray(trace.writes, dtype="u1"),
    }
    # The header length feeds back into the first column offset; padding
    # the JSON to the alignment boundary keeps the layout single-pass.
    columns = {}
    offset = 0  # patched after the header size is known
    header = {"count": count, "meta": dict(trace.meta), "columns": columns}
    for name, dtype in _COLUMNS:
        columns[name] = {"dtype": dtype, "offset": 0}
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    while True:  # re-place until the offsets' digit width stabilizes
        offset = _aligned(12 + len(encoded))
        for name, dtype in _COLUMNS:
            columns[name]["offset"] = offset
            offset = _aligned(offset + arrays[name].nbytes)
        refreshed = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(refreshed) == len(encoded):
            encoded = refreshed
            break
        encoded = refreshed

    tmp = f"{base}.tmp-{os.getpid()}.gsct"
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(
                np.array([FORMAT_VERSION, len(encoded)], dtype="<u4").tobytes()
            )
            handle.write(encoded)
            for name, _ in _COLUMNS:
                handle.seek(columns[name]["offset"])
                handle.write(arrays[name].tobytes())
        os.replace(tmp, base)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_columnar(path: PathLike, mmap: bool = True) -> Trace:
    """Load a ``.gsct`` trace; ``mmap=True`` maps columns zero-copy."""
    base = os.fspath(path)
    try:
        with open(base, "rb") as handle:
            preamble = handle.read(12)
            if len(preamble) < 12 or preamble[:4] != MAGIC:
                raise TraceError(f"not a columnar trace (bad magic): {base}")
            version, header_len = np.frombuffer(preamble[4:], dtype="<u4")
            if int(version) != FORMAT_VERSION:
                raise TraceError(
                    f"columnar trace version {int(version)} unsupported "
                    f"(expected {FORMAT_VERSION}): {base}"
                )
            raw = handle.read(int(header_len))
            if len(raw) != int(header_len):
                raise TraceError(f"truncated columnar header: {base}")
            header = json.loads(raw.decode("utf-8"))
        count = int(header["count"])
        size = os.path.getsize(base)
        views = {}
        for name, dtype in _COLUMNS:
            column = header["columns"][name]
            offset = int(column["offset"])
            nbytes = count * np.dtype(dtype).itemsize
            if nbytes == 0:  # zero-length mappings are not a thing
                views[name] = np.empty(0, dtype=dtype)
                continue
            if offset + nbytes > size:
                raise TraceError(f"truncated column {name!r}: {base}")
            if mmap:
                views[name] = np.memmap(
                    base, dtype=dtype, mode="r", offset=offset, shape=(count,)
                )
            else:
                with open(base, "rb") as handle:
                    handle.seek(offset)
                    views[name] = np.frombuffer(
                        handle.read(nbytes), dtype=dtype
                    )
        return Trace(
            views["addresses"],
            views["streams"],
            views["writes"].view(np.bool_),
            header.get("meta", {}),
        )
    except (OSError, KeyError, ValueError) as exc:
        raise TraceError(f"cannot load columnar trace from {base}: {exc}") from exc
