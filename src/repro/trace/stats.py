"""Trace-level statistics (independent of any cache).

These feed the characterization experiments: the stream-wise access mix of
Figure 4 is a property of the trace alone, and footprints put the LLC
capacity into context.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.streams import ALL_STREAMS, Stream
from repro.trace.record import Trace


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    accesses: int
    writes: int
    #: Accesses per stream.
    stream_counts: Dict[Stream, int]
    #: Distinct 64 B blocks per stream.
    stream_footprint_blocks: Dict[Stream, int]
    #: Distinct 64 B blocks overall.
    footprint_blocks: int

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_blocks * 64

    def stream_fraction(self, stream: Stream) -> float:
        """Fraction of all accesses contributed by ``stream``."""
        if self.accesses == 0:
            return 0.0
        return self.stream_counts[stream] / self.accesses

    def mix(self) -> Dict[Stream, float]:
        """The Figure-4 style access mix, one fraction per stream."""
        return {stream: self.stream_fraction(stream) for stream in ALL_STREAMS}


def reuse_distances(trace: Trace) -> np.ndarray:
    """LRU stack distances of every access, at 64 B block granularity.

    The stack distance of an access is the number of *distinct* blocks
    touched since the previous access to the same block — the classic
    single-pass characterization: an access hits in a fully-associative
    LRU cache of ``C`` blocks iff its stack distance is ``< C``, so the
    distance histogram is the miss-rate curve for every capacity at
    once.  Cold (first-touch) accesses report ``-1``.

    Runs in ``O(n log n)`` with a Fenwick tree over access positions:
    each block keeps a marker at its previous access position; the
    distance of a re-access is the number of markers strictly between
    the previous position and now.
    """
    n = len(trace)
    distances = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return distances
    blocks = trace.block_addresses()
    # Dense block ids so the last-seen table is an array, not a dict.
    _, ids = np.unique(blocks, return_inverse=True)
    ids = ids.astype(np.int64)
    last_seen = np.full(int(ids.max()) + 1, -1, dtype=np.int64)
    tree = np.zeros(n + 1, dtype=np.int64)  # Fenwick over positions 1..n

    def add(pos: int, delta: int) -> None:
        pos += 1
        while pos <= n:
            tree[pos] += delta
            pos += pos & -pos

    def prefix(pos: int) -> int:  # markers in positions [0, pos)
        total = 0
        while pos > 0:
            total += tree[pos]
            pos -= pos & -pos
        return total

    ids_list = ids.tolist()  # ~3x faster iteration than ndarray indexing
    for index, block_id in enumerate(ids_list):
        previous = last_seen[block_id]
        if previous >= 0:
            distances[index] = prefix(index) - prefix(previous + 1)
            add(previous, -1)
        add(index, 1)
        last_seen[block_id] = index
    return distances


def reuse_distance_summary(trace: Trace) -> Dict[str, float]:
    """JSON-ready digest of :func:`reuse_distances`.

    ``cold_fraction`` is the share of first-touch accesses; the
    percentiles describe the stack-distance distribution of the
    *re-accesses* only (in 64 B blocks — compare directly against an
    LLC capacity in blocks).
    """
    distances = reuse_distances(trace)
    reused = distances[distances >= 0]
    summary: Dict[str, float] = {
        "accesses": float(len(distances)),
        "cold_fraction": (
            1.0 - len(reused) / len(distances) if len(distances) else 0.0
        ),
    }
    if len(reused):
        summary.update(
            mean=float(reused.mean()),
            p50=float(np.percentile(reused, 50)),
            p90=float(np.percentile(reused, 90)),
            p99=float(np.percentile(reused, 99)),
            max=float(reused.max()),
        )
    else:
        summary.update(mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
    return summary


def compute_trace_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in a single pass."""
    blocks = trace.block_addresses()
    stream_counts: Dict[Stream, int] = {}
    stream_footprint: Dict[Stream, int] = {}
    for stream in ALL_STREAMS:
        mask = trace.stream_mask(stream)
        stream_counts[stream] = int(mask.sum())
        stream_footprint[stream] = (
            int(np.unique(blocks[mask]).size) if stream_counts[stream] else 0
        )
    return TraceStats(
        accesses=len(trace),
        writes=int(trace.writes.sum()),
        stream_counts=stream_counts,
        stream_footprint_blocks=stream_footprint,
        footprint_blocks=int(np.unique(blocks).size) if len(trace) else 0,
    )
