"""Trace-level statistics (independent of any cache).

These feed the characterization experiments: the stream-wise access mix of
Figure 4 is a property of the trace alone, and footprints put the LLC
capacity into context.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.streams import ALL_STREAMS, Stream
from repro.trace.record import Trace


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    accesses: int
    writes: int
    #: Accesses per stream.
    stream_counts: Dict[Stream, int]
    #: Distinct 64 B blocks per stream.
    stream_footprint_blocks: Dict[Stream, int]
    #: Distinct 64 B blocks overall.
    footprint_blocks: int

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_blocks * 64

    def stream_fraction(self, stream: Stream) -> float:
        """Fraction of all accesses contributed by ``stream``."""
        if self.accesses == 0:
            return 0.0
        return self.stream_counts[stream] / self.accesses

    def mix(self) -> Dict[Stream, float]:
        """The Figure-4 style access mix, one fraction per stream."""
        return {stream: self.stream_fraction(stream) for stream in ALL_STREAMS}


def compute_trace_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in a single pass."""
    blocks = trace.block_addresses()
    stream_counts: Dict[Stream, int] = {}
    stream_footprint: Dict[Stream, int] = {}
    for stream in ALL_STREAMS:
        mask = trace.stream_mask(stream)
        stream_counts[stream] = int(mask.sum())
        stream_footprint[stream] = (
            int(np.unique(blocks[mask]).size) if stream_counts[stream] else 0
        )
    return TraceStats(
        accesses=len(trace),
        writes=int(trace.writes.sum()),
        stream_counts=stream_counts,
        stream_footprint_blocks=stream_footprint,
        footprint_blocks=int(np.unique(blocks).size) if len(trace) else 0,
    )
